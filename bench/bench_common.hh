/**
 * @file
 * Shared configuration for the bench binaries.
 *
 * Every bench honours the QPAD_FAST environment variable (0/1, or
 * unset/empty = off) to run with reduced Monte Carlo budgets during
 * development; the default budgets follow the paper (10,000 yield
 * trials, sigma = 30 MHz). QPAD_THREADS caps the worker count of the
 * parallel runtime (0 or unset = one per hardware thread, 1 =
 * sequential); results are identical for every setting. Malformed
 * values (negative counts, trailing garbage, out-of-range numbers,
 * QPAD_FAST flags other than 0/1) abort with a message instead of
 * being silently coerced into a surprising configuration.
 *
 * QPAD_DEADLINE_MS=<millis> arms an execution deadline on the bench's
 * request context: the run either completes in full or unwinds as a
 * deadline-exceeded cancellation (each bench documents its exit code
 * for that case). A deadline generous enough to finish changes
 * nothing — a context decides only WHETHER a result exists, never its
 * bytes.
 *
 * Observability (handled by qpad::obs, no bench code involved):
 * QPAD_TRACE=<path> writes a Chrome trace-event JSON profile of the
 * run at exit, QPAD_METRICS=stderr|<path> dumps the process metrics
 * registry at exit. Neither affects any computed result — outputs
 * are bit-identical with the variables set or unset.
 */

#ifndef QPAD_BENCH_BENCH_COMMON_HH
#define QPAD_BENCH_BENCH_COMMON_HH

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "eval/experiment.hh"
#include "exec/context.hh"
#include "obs/metrics.hh"

namespace qpad::bench
{

/**
 * Scheduler series moved by one timed call, read back as metrics-
 * registry deltas so benches print the very series QPAD_METRICS
 * exports. Valid when the call ran exactly one parallel region:
 * then the idle-histogram sum delta is that region's single
 * max-idle observation.
 */
struct RegionDelta
{
    std::size_t chunks = 0;
    std::size_t steals = 0;
    double max_idle_seconds = 0.0;
};

inline RegionDelta
regionDelta(const obs::Snapshot &before)
{
    const obs::Snapshot d = obs::deltaSince(before);
    RegionDelta out;
    out.chunks = std::size_t(obs::valueOf(d, "runtime.chunks"));
    out.steals = std::size_t(obs::valueOf(d, "runtime.steals"));
    out.max_idle_seconds =
        obs::valueOf(d, "runtime.region_idle_seconds");
    return out;
}

[[noreturn]] inline void
dieOnEnv(const char *name, const char *value, const char *expected)
{
    std::fprintf(stderr, "qpad bench: invalid %s value '%s' (%s)\n",
                 name, value, expected);
    std::exit(2);
}

/** Development fast mode: QPAD_FAST must be unset, empty, 0, or 1. */
inline bool
fastMode()
{
    const char *fast = std::getenv("QPAD_FAST");
    if (!fast || !*fast)
        return false;
    if (fast[0] != '\0' && fast[1] == '\0') {
        if (fast[0] == '0')
            return false;
        if (fast[0] == '1')
            return true;
    }
    dieOnEnv("QPAD_FAST", fast, "expected 0 or 1");
}

/** Worker-thread override from QPAD_THREADS (0 = hardware). */
inline runtime::Options
execOptions()
{
    runtime::Options exec;
    const char *threads = std::getenv("QPAD_THREADS");
    if (!threads || !*threads)
        return exec;
    // Digits only: strtoul would silently accept (and wrap) signs,
    // whitespace, and hex prefixes.
    for (const char *c = threads; *c; ++c)
        if (!std::isdigit(static_cast<unsigned char>(*c)))
            dieOnEnv("QPAD_THREADS", threads,
                     "expected a nonnegative integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(threads, &end, 10);
    // The runtime's own ceiling: a value that passes here must never
    // panic inside resolveThreads, and the diagnostic quotes the
    // same constant the check uses.
    if (errno == ERANGE || *end != '\0' || v > runtime::kMaxThreads) {
        const std::string expected =
            "expected a thread count of at most " +
            std::to_string(runtime::kMaxThreads);
        dieOnEnv("QPAD_THREADS", threads, expected.c_str());
    }
    exec.num_threads = std::size_t(v);
    return exec;
}

/**
 * Wall-clock budget from QPAD_DEADLINE_MS in milliseconds, or 0 when
 * unset/empty (no deadline). Same strictness as the other knobs:
 * digits only, and 0 itself is rejected — an always-expired deadline
 * is never what the user meant, and 0 is the "unset" sentinel here.
 */
inline std::uint64_t
deadlineMs()
{
    const char *ms = std::getenv("QPAD_DEADLINE_MS");
    if (!ms || !*ms)
        return 0;
    for (const char *c = ms; *c; ++c)
        if (!std::isdigit(static_cast<unsigned char>(*c)))
            dieOnEnv("QPAD_DEADLINE_MS", ms,
                     "expected a positive integer of milliseconds");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(ms, &end, 10);
    if (errno == ERANGE || *end != '\0' || v == 0)
        dieOnEnv("QPAD_DEADLINE_MS", ms,
                 "expected a positive integer of milliseconds");
    return std::uint64_t(v);
}

/**
 * The bench's request context: fresh, with a deadline armed when
 * QPAD_DEADLINE_MS is set. Pass it to the ctx-threaded entry points;
 * with the variable unset the context never stops anything.
 */
inline exec::Context
requestContext()
{
    exec::Context ctx;
    if (const std::uint64_t ms = deadlineMs())
        ctx.setDeadlineAfter(std::chrono::milliseconds(ms));
    return ctx;
}

/**
 * Machine-readable bench results for the `--json <path>` flag: one
 * `{"bench":...,"config":{...},"metrics":{...}}` object per run, so
 * CI can archive the numbers it already prints as artifacts. Purely
 * an extra output — the human-readable stdout is unchanged whether
 * the flag is given or not, keeping the cmp-gated legs byte-stable.
 * Keys render in insertion order; values are rendered at insert time
 * (doubles with enough digits to round-trip).
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

    void config(const std::string &key, double v)
    {
        configs_.emplace_back(key, number(v));
    }
    void config(const std::string &key, unsigned long long v)
    {
        configs_.emplace_back(key, std::to_string(v));
    }
    void config(const std::string &key, unsigned long v)
    {
        config(key, (unsigned long long)v);
    }
    void config(const std::string &key, unsigned v)
    {
        config(key, (unsigned long long)v);
    }
    void config(const std::string &key, bool v)
    {
        configs_.emplace_back(key, v ? "true" : "false");
    }
    void config(const std::string &key, const std::string &v)
    {
        configs_.emplace_back(key, quoted(v));
    }
    void config(const std::string &key, const char *v)
    {
        configs_.emplace_back(key, quoted(v));
    }

    void metric(const std::string &key, double v)
    {
        metrics_.emplace_back(key, number(v));
    }
    void metric(const std::string &key, unsigned long long v)
    {
        metrics_.emplace_back(key, std::to_string(v));
    }
    void metric(const std::string &key, unsigned long v)
    {
        metric(key, (unsigned long long)v);
    }
    void metric(const std::string &key, unsigned v)
    {
        metric(key, (unsigned long long)v);
    }
    void metric(const std::string &key, bool v)
    {
        metrics_.emplace_back(key, v ? "true" : "false");
    }
    void metric(const std::string &key, const std::string &v)
    {
        metrics_.emplace_back(key, quoted(v));
    }

    /** Write the document; exits 2 on IO failure (a CI artifact that
     * silently vanished would defeat the point of the flag). */
    void writeTo(const std::string &path) const
    {
        std::ofstream out(path, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr,
                         "qpad bench: cannot write --json file "
                         "'%s'\n",
                         path.c_str());
            std::exit(2);
        }
        out << "{\"bench\":" << quoted(bench_) << ",\"config\":{";
        render(out, configs_);
        out << "},\"metrics\":{";
        render(out, metrics_);
        out << "}}\n";
    }

  private:
    using Entries =
        std::vector<std::pair<std::string, std::string>>;

    static std::string number(double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        return buf;
    }

    static std::string quoted(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        out += '"';
        return out;
    }

    static void render(std::ostream &out, const Entries &entries)
    {
        bool first = true;
        for (const auto &[key, value] : entries) {
            if (!first)
                out << ",";
            first = false;
            out << quoted(key) << ":" << value;
        }
    }

    std::string bench_;
    Entries configs_;
    Entries metrics_;
};

/** Paper-fidelity experiment options (or scaled-down in fast mode). */
inline eval::ExperimentOptions
paperOptions()
{
    eval::ExperimentOptions opts;
    if (fastMode()) {
        opts.yield_options.trials = 1000;
        opts.max_yield_trials = 100000;
        opts.freq_options.local_trials = 300;
        opts.freq_options.refine_sweeps = 1;
        opts.random_bus_samples = 3;
    } else {
        opts.yield_options.trials = 10000; // paper Section 5.1
        // Dense 16-qubit chips need a large local budget before the
        // candidate argmax rises above Monte Carlo noise.
        opts.freq_options.local_trials = 8000;
        opts.random_bus_samples = 5;
    }
    opts.yield_options.sigma_ghz = 0.030; // paper Section 5.1
    // Parallel runtime: data points, yield shards, and the frequency
    // allocator's candidate scan all share the worker budget.
    opts.exec = execOptions();
    opts.yield_options.exec = opts.exec;
    opts.freq_options.exec = opts.exec;
    return opts;
}

} // namespace qpad::bench

#endif // QPAD_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Shared configuration for the bench binaries.
 *
 * Every bench honours the QPAD_FAST environment variable (any
 * non-empty value) to run with reduced Monte Carlo budgets during
 * development; the default budgets follow the paper (10,000 yield
 * trials, sigma = 30 MHz). QPAD_THREADS caps the worker count of the
 * parallel runtime (0 or unset = one per hardware thread, 1 =
 * sequential); results are identical for every setting.
 */

#ifndef QPAD_BENCH_BENCH_COMMON_HH
#define QPAD_BENCH_BENCH_COMMON_HH

#include <cstdlib>

#include "eval/experiment.hh"

namespace qpad::bench
{

inline bool
fastMode()
{
    const char *fast = std::getenv("QPAD_FAST");
    return fast && *fast;
}

/** Worker-thread override from QPAD_THREADS (0 = hardware). */
inline runtime::Options
execOptions()
{
    runtime::Options exec;
    const char *threads = std::getenv("QPAD_THREADS");
    if (threads && *threads)
        exec.num_threads = std::strtoul(threads, nullptr, 10);
    return exec;
}

/** Paper-fidelity experiment options (or scaled-down in fast mode). */
inline eval::ExperimentOptions
paperOptions()
{
    eval::ExperimentOptions opts;
    if (fastMode()) {
        opts.yield_options.trials = 1000;
        opts.max_yield_trials = 100000;
        opts.freq_options.local_trials = 300;
        opts.freq_options.refine_sweeps = 1;
        opts.random_bus_samples = 3;
    } else {
        opts.yield_options.trials = 10000; // paper Section 5.1
        // Dense 16-qubit chips need a large local budget before the
        // candidate argmax rises above Monte Carlo noise.
        opts.freq_options.local_trials = 8000;
        opts.random_bus_samples = 5;
    }
    opts.yield_options.sigma_ghz = 0.030; // paper Section 5.1
    // Parallel runtime: data points, yield shards, and the frequency
    // allocator's candidate scan all share the worker budget.
    opts.exec = execOptions();
    opts.yield_options.exec = opts.exec;
    opts.freq_options.exec = opts.exec;
    return opts;
}

} // namespace qpad::bench

#endif // QPAD_BENCH_BENCH_COMMON_HH

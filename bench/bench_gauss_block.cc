/**
 * @file
 * Microbenchmark of Gaussian sampling for the yield Monte Carlo:
 * the legacy scalar Rng::gaussian() trial-major fill (draw scheme
 * v1) versus the lane-parallel GaussianBlockSampler filling the
 * same SoA trial blocks directly (scheme v2), plus the end-to-end
 * effect on estimateYield, single-threaded so the sampler itself is
 * what is measured.
 *
 * The bench also asserts the v2 determinism contract on every run —
 * bit-identical estimateYield tallies across thread counts and a
 * QPAD_RNG_V1 env round trip — and exits nonzero on any violation.
 * QPAD_FAST reduces the budgets.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "common/gauss_block.hh"
#include "eval/report.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

namespace
{

constexpr std::size_t B = GaussianBlockSampler::kLanes;

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * ns per deviate for both samplers filling `reps` SoA blocks of
 * nq qubits by 8 lanes (the estimateYield inner loop with the
 * collision check removed).
 */
void
benchFill(std::size_t nq, std::size_t reps, bench::BenchJson *json)
{
    std::vector<double> means(nq);
    for (std::size_t q = 0; q < nq; ++q)
        means[q] = 5.0 + 0.01 * double(q % 34);
    std::vector<double> block(nq * B);
    const double sigma = 0.030;
    using clock = std::chrono::steady_clock;

    Rng rng(1);
    double sink = 0.0;
    const auto s0 = clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        for (std::size_t l = 0; l < B; ++l)
            for (std::size_t q = 0; q < nq; ++q)
                block[q * B + l] = rng.gaussian(means[q], sigma);
        sink += block[0];
    }
    const auto s1 = clock::now();

    GaussianBlockSampler sampler(1);
    const auto b0 = clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        sampler.fillAffine(block.data(), means.data(), sigma, nq);
        sink += block[0];
    }
    const auto b1 = clock::now();

    const double deviates = double(reps) * double(nq) * double(B);
    const double scalar_ns = seconds(s0, s1) / deviates * 1e9;
    const double lane_ns = seconds(b0, b1) / deviates * 1e9;
    std::printf("%-22s %11.2f %11.2f %9.2fx   (sink %.3g)\n",
                nq == 16 ? "fill 16q blocks" : "fill 32q blocks",
                scalar_ns, lane_ns, scalar_ns / lane_ns, sink);
    if (json) {
        const std::string prefix = "fill" + std::to_string(nq) + "q_";
        json->metric(prefix + "scalar_ns", scalar_ns);
        json->metric(prefix + "lanes_ns", lane_ns);
        json->metric(prefix + "speedup", scalar_ns / lane_ns);
    }
}

/** us per trial of estimateYield under the given scheme. */
double
timeYield(const arch::Architecture &arch, RngScheme scheme,
          std::size_t trials, std::size_t &successes)
{
    yield::YieldOptions opts;
    opts.trials = trials;
    opts.seed = 11;
    opts.sigma_ghz = 0.030;
    opts.exec.num_threads = 1;
    opts.rng_scheme = scheme;
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const auto r = yield::estimateYield(arch, opts);
    const auto t1 = clock::now();
    successes = r.successes;
    return seconds(t0, t1) / double(trials) * 1e6;
}

/** v2 contract checks; returns 0 when every identity holds. */
int
checkDeterminism(const arch::Architecture &arch, std::size_t trials)
{
    int rc = 0;
    yield::YieldOptions opts;
    opts.trials = trials + 3; // force a remainder batch
    opts.seed = 2020;
    opts.exec.num_threads = 1;
    const auto seq = yield::estimateYield(arch, opts);
    opts.exec.num_threads = 4;
    const auto par = yield::estimateYield(arch, opts);
    if (seq.successes != par.successes) {
        std::printf("DETERMINISM VIOLATION: v2 threads 1 vs 4: "
                    "%zu != %zu\n",
                    seq.successes, par.successes);
        rc = 1;
    }
    // Env round trip: QPAD_RNG_V1 must select exactly the kV1 path.
    opts.exec.num_threads = 1;
    opts.rng_scheme = RngScheme::kV1;
    const auto v1 = yield::estimateYield(arch, opts);
    setenv("QPAD_RNG_V1", "1", 1);
    opts.rng_scheme = RngScheme::kV2;
    const auto forced = yield::estimateYield(arch, opts);
    unsetenv("QPAD_RNG_V1");
    const auto back = yield::estimateYield(arch, opts);
    if (forced.successes != v1.successes ||
        back.successes != seq.successes) {
        std::printf("DETERMINISM VIOLATION: QPAD_RNG_V1 round trip "
                    "(%zu/%zu vs %zu/%zu)\n",
                    forced.successes, v1.successes, back.successes,
                    seq.successes);
        rc = 1;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    bench::BenchJson json("gauss_block");
    bench::BenchJson *jp = json_path.empty() ? nullptr : &json;

    eval::printHeader(std::cout,
                      "Gaussian sampling: scalar Rng vs lane-parallel "
                      "block sampler");

    // This bench compares the schemes against each other, and its
    // determinism check flips QPAD_RNG_V1 itself; an inherited
    // override would silently turn the "v2" rows into v1 and then
    // trip the round-trip check with a spurious violation.
    if (std::getenv("QPAD_RNG_V1")) {
        std::printf("note: ignoring inherited QPAD_RNG_V1 (this "
                    "bench exercises both schemes itself)\n\n");
        unsetenv("QPAD_RNG_V1");
    }

    const std::size_t reps = bench::fastMode() ? 20000 : 200000;
    std::printf("%zu blocks of 8 lanes per pass\n\n", reps);
    std::printf("%-22s %11s %11s %10s\n", "workload", "scalar ns",
                "lanes ns", "speedup");
    if (jp)
        jp->config("reps", reps);
    benchFill(16, reps, jp);
    benchFill(32, reps, jp);

    const std::size_t trials = bench::fastMode() ? 40000 : 200000;
    auto arch = arch::ibm16Q(false);
    std::size_t s1 = 0, s2 = 0;
    const double us_v1 = timeYield(arch, RngScheme::kV1, trials, s1);
    const double us_v2 = timeYield(arch, RngScheme::kV2, trials, s2);
    std::printf("\nestimateYield (16q, sigma 30 MHz, %zu trials, "
                "1 thread):\n",
                trials);
    std::printf("  v1 scalar draws:  %.3f us/trial (yield %.4f)\n",
                us_v1, double(s1) / double(trials));
    std::printf("  v2 lane draws:    %.3f us/trial (yield %.4f)\n",
                us_v2, double(s2) / double(trials));
    std::printf("  end-to-end speedup: %.2fx\n", us_v1 / us_v2);

    const int rc = checkDeterminism(arch, bench::fastMode() ? 5000
                                                            : 20000);
    if (rc == 0)
        std::printf("\nv2 determinism contract holds (threads, "
                    "remainders, env round trip)\n");
    if (jp) {
        jp->config("yield_trials", trials);
        jp->metric("yield_v1_us_per_trial", us_v1);
        jp->metric("yield_v2_us_per_trial", us_v2);
        jp->metric("yield_speedup", us_v1 / us_v2);
        jp->metric("determinism_ok", rc == 0);
        json.writeTo(json_path);
    }
    return rc;
}

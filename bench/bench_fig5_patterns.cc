/**
 * @file
 * Experiment E3 (paper Figure 5): qubit coupling-strength patterns
 * of UCCSD_ansatz_8 (chain-dominant) and misex1_241 (inputs never
 * couple; output/work qubits couple heavily).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "benchmarks/suite.hh"
#include "eval/report.hh"
#include "profile/coupling.hh"

using namespace qpad;

namespace
{

void
show(const std::string &name)
{
    const auto &info = benchmarks::getBenchmark(name);
    auto circ = info.generate();
    auto prof = profile::profileCircuit(circ);

    eval::printHeader(std::cout, name + "  (" +
                                     std::to_string(circ.numQubits()) +
                                     " qubits, " + info.domain + ")");
    std::cout << "two-qubit gates: " << prof.total_two_qubit_gates
              << "\n\ncoupling strength matrix:\n"
              << prof.strengthTable() << "\n";

    std::cout << "coupling degree list (qubit: degree):";
    for (std::size_t i = 0; i < prof.degree_list.size(); ++i) {
        auto q = prof.degree_list[i];
        std::cout << (i % 8 == 0 ? "\n  " : "  ") << "q" << q << ": "
                  << prof.degrees[q];
    }
    std::cout << "\n\n";
}

} // namespace

int
main()
{
    show("UCCSD_ansatz_8");
    std::cout << "Expected shape (paper Fig. 5 left): adjacent-index "
              << "pairs (the chain)\ncarry most of the weight; other "
              << "pairs are ~10% or zero.\n\n";

    show("misex1_241");
    std::cout << "Expected shape (paper Fig. 5 right): the input "
              << "qubits q0..q7 never couple\nto each other directly"
              << " as a dominant pattern; the output/work qubits\n"
              << "q8..q14 accumulate heavy coupling.\n";

    // Quantified shape checks printed as PASS/FAIL-style rows.
    auto uccsd = profile::profileCircuit(
        benchmarks::getBenchmark("UCCSD_ansatz_8").generate());
    uint64_t chain = 0, off = 0;
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = i + 1; j < 8; ++j)
            (j == i + 1 ? chain : off) += uccsd.strength(i, j);
    std::cout << "\nUCCSD chain weight share: "
              << eval::formatFixed(double(chain) / double(chain + off),
                                   3)
              << " (paper: dominant)\n";

    auto misex = profile::profileCircuit(
        benchmarks::getBenchmark("misex1_241").generate());
    // Shape checks. Note one documented deviation (DESIGN.md): in
    // the RevLib original, several input lines never couple at all;
    // our PPRM synthesis decomposes Toffolis with the standard 6-CX
    // network, whose phase-correction stage couples co-controlling
    // inputs. The robust Figure 5 properties — a strongly
    // non-uniform matrix whose heaviest qubits are the output/work
    // lines — are preserved and quantified here.
    std::vector<uint32_t> weights;
    for (std::size_t i = 0; i < 15; ++i)
        for (std::size_t j = i + 1; j < 15; ++j)
            if (misex.strength(i, j))
                weights.push_back(misex.strength(i, j));
    std::sort(weights.begin(), weights.end());
    std::cout << "misex1 nonuniformity: max pair weight "
              << weights.back() << " vs median "
              << weights[weights.size() / 2] << " ("
              << eval::formatFixed(double(weights.back()) /
                                       weights[weights.size() / 2],
                                   1)
              << "x; paper: order-of-magnitude spread)\n";
    uint64_t out_out = 0, total = 0;
    for (std::size_t i = 0; i < 15; ++i) {
        for (std::size_t j = i + 1; j < 15; ++j) {
            total += misex.strength(i, j);
            if (i >= 8 && j >= 8)
                out_out += misex.strength(i, j);
        }
    }
    std::cout << "misex1 zero-block: the 7 output lines carry only "
              << eval::formatFixed(100.0 * out_out / total, 1)
              << "% of the pair weight among themselves\n(the "
              << "paper's figure has such a zero block among Q0..Q5; "
              << "in our PPRM embedding the\nmutually-uncoupled "
              << "group is the output register — see DESIGN.md "
              << "substitutions)\n";
    return 0;
}

/**
 * @file
 * Ablation A3: the filtered-weight rule of Algorithm 2. Compares
 * the paper's filter (own weight minus neighbours' weights) against
 * plain greedy-by-raw-weight selection: total captured diagonal
 * coupling weight and resulting post-mapping gate count.
 */

#include <iostream>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"

using namespace qpad;
using arch::Architecture;

namespace
{

/** Greedy raw-weight selection (no neighbour filter). */
design::BusSelectionResult
selectRawGreedy(const Architecture &arch,
                const profile::CouplingProfile &prof,
                std::size_t max_buses)
{
    design::BusSelectionResult result;
    Architecture scratch = arch;
    for (std::size_t round = 0; round < max_buses; ++round) {
        uint64_t best_w = 0;
        arch::Coord best{};
        bool found = false;
        for (const auto &sq : scratch.eligibleSquares()) {
            if (!scratch.canAddFourQubitBus(sq.origin))
                continue;
            uint64_t w = 0;
            for (auto [a, b] : sq.diagonals)
                w += prof.strength(a, b);
            if (w > best_w) {
                best_w = w;
                best = sq.origin;
                found = true;
            }
        }
        if (!found)
            break;
        scratch.addFourQubitBus(best);
        result.selected.push_back(best);
        result.weights.push_back(best_w);
    }
    return result;
}

uint64_t
totalWeight(const design::BusSelectionResult &sel)
{
    uint64_t sum = 0;
    for (auto w : sel.weights)
        sum += w;
    return sum;
}

} // namespace

int
main()
{
    eval::printHeader(std::cout,
                      "Ablation: filtered weight vs raw greedy bus "
                      "selection");
    std::cout << "bench             buses  filt-weight raw-weight | "
              << "filt-gates raw-gates\n";

    for (const auto &info : benchmarks::paperSuite()) {
        auto circ = info.generate();
        auto prof = profile::profileCircuit(circ);
        auto layout = design::designLayout(prof);
        Architecture bare(layout.layout, "bare");

        auto filtered = design::selectBuses(bare, prof, SIZE_MAX);
        auto raw =
            selectRawGreedy(bare, prof, filtered.selected.size());
        if (filtered.selected.empty()) {
            std::cout << "  " << info.name
                      << ": no beneficial squares (chain pattern)\n";
            continue;
        }

        Architecture with_filtered = bare;
        design::applyBusSelection(with_filtered, filtered);
        Architecture with_raw = bare;
        design::applyBusSelection(with_raw, raw);

        auto g_f = mapping::mapCircuit(circ, with_filtered).total_gates;
        auto g_r = mapping::mapCircuit(circ, with_raw).total_gates;

        std::cout << "  " << info.name;
        for (std::size_t pad = info.name.size(); pad < 16; ++pad)
            std::cout << ' ';
        std::cout << filtered.selected.size() << "      "
                  << totalWeight(filtered) << "      "
                  << totalWeight(raw) << "   |   " << g_f << "   "
                  << g_r << "\n";
    }
    std::cout << "\nExpected shape: raw greedy can block two good "
              << "neighbours by taking a middle\nsquare, so the "
              << "filter usually captures comparable-or-more total "
              << "weight; the\ndecisive metric is the post-mapping "
              << "gate count, where the filtered choice\nshould be "
              << "equal or better.\n";
    return 0;
}

/**
 * @file
 * Ablation A5: wall-clock cost of every stage of the design flow
 * (google-benchmark). Shows the flow is interactive-speed, i.e. the
 * scalability claim of the paper's heuristics.
 */

#include <benchmark/benchmark.h>

#include "arch/ibm.hh"
#include "benchmarks/suite.hh"
#include "design/design_flow.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

namespace
{

const circuit::Circuit &
bigCircuit()
{
    static const circuit::Circuit circ =
        benchmarks::getBenchmark("misex1_241").generate();
    return circ;
}

const profile::CouplingProfile &
bigProfile()
{
    static const profile::CouplingProfile prof =
        profile::profileCircuit(bigCircuit());
    return prof;
}

void
BM_GenerateBenchmark(benchmark::State &state)
{
    const auto &info = benchmarks::paperSuite()[state.range(0)];
    for (auto _ : state)
        benchmark::DoNotOptimize(info.generate());
    state.SetLabel(info.name);
}
BENCHMARK(BM_GenerateBenchmark)->DenseRange(0, 11);

void
BM_Profile(benchmark::State &state)
{
    const auto &circ = bigCircuit();
    for (auto _ : state)
        benchmark::DoNotOptimize(profile::profileCircuit(circ));
}
BENCHMARK(BM_Profile);

void
BM_LayoutDesign(benchmark::State &state)
{
    const auto &prof = bigProfile();
    for (auto _ : state)
        benchmark::DoNotOptimize(design::designLayout(prof));
}
BENCHMARK(BM_LayoutDesign);

void
BM_BusSelection(benchmark::State &state)
{
    const auto &prof = bigProfile();
    auto layout = design::designLayout(prof);
    arch::Architecture chip(layout.layout);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            design::selectBuses(chip, prof, SIZE_MAX));
}
BENCHMARK(BM_BusSelection);

void
BM_FreqAllocation(benchmark::State &state)
{
    const auto &prof = bigProfile();
    auto layout = design::designLayout(prof);
    arch::Architecture chip(layout.layout);
    design::applyBusSelection(chip,
                              design::selectBuses(chip, prof, 2));
    design::FreqAllocOptions opts;
    opts.local_trials = state.range(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            design::allocateFrequencies(chip, opts));
    state.SetLabel("local_trials=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FreqAllocation)->Arg(500)->Arg(2000);

void
BM_SabreMapping(benchmark::State &state)
{
    const auto &circ = bigCircuit();
    auto chip = arch::ibm20Q(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(mapping::mapCircuit(circ, chip));
    state.SetItemsProcessed(state.iterations() * circ.size());
}
BENCHMARK(BM_SabreMapping);

void
BM_YieldSimulation(benchmark::State &state)
{
    auto chip = arch::ibm20Q(true);
    yield::YieldOptions opts;
    opts.trials = state.range(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(yield::estimateYield(chip, opts));
    state.SetLabel(std::to_string(state.range(0)) + " trials");
}
BENCHMARK(BM_YieldSimulation)->Arg(1000)->Arg(10000);

void
BM_EndToEndFlow(benchmark::State &state)
{
    const auto &prof = bigProfile();
    design::DesignFlowOptions opts;
    opts.max_buses = 2;
    opts.freq_options.local_trials = 500;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            design::designArchitecture(prof, opts, "bm"));
}
BENCHMARK(BM_EndToEndFlow);

} // namespace

BENCHMARK_MAIN();

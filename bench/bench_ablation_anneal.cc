/**
 * @file
 * Ablation A9: how near-optimal is Algorithm 1? The paper states
 * its heuristics find "near-optimal" solutions in the reduced
 * search space; this bench anneals each benchmark's placement for a
 * long budget and reports the residual cost gap.
 */

#include <iostream>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "design/anneal.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"

using namespace qpad;
using eval::formatFixed;

int
main()
{
    eval::printHeader(std::cout,
                      "Ablation: Algorithm 1 vs simulated-annealing "
                      "refinement");
    std::cout << "bench             alg1-cost annealed-cost  gap   | "
              << "alg1-gates annealed-gates\n";

    design::AnnealOptions opts;
    opts.iterations = bench::fastMode() ? 5000 : 40000;

    double worst_gap = 0.0;
    for (const auto &info : benchmarks::paperSuite()) {
        auto circ = info.generate();
        auto prof = profile::profileCircuit(circ);
        auto start = design::designLayout(prof);
        auto annealed = design::annealLayout(prof, start, opts);

        double gap =
            annealed.final_cost > 0
                ? double(start.placement_cost) /
                          double(annealed.final_cost) -
                      1.0
                : 0.0;
        worst_gap = std::max(worst_gap, gap);

        arch::Architecture chip_a(start.layout, "alg1");
        arch::Architecture chip_b(annealed.layout.layout, "annealed");
        auto g_a = mapping::mapCircuit(circ, chip_a).total_gates;
        auto g_b = mapping::mapCircuit(circ, chip_b).total_gates;

        std::cout << "  " << info.name;
        for (std::size_t pad = info.name.size(); pad < 16; ++pad)
            std::cout << ' ';
        std::cout << start.placement_cost << "   "
                  << annealed.final_cost << "   "
                  << formatFixed(100 * gap, 1) << "%  |  " << g_a
                  << "   " << g_b << "\n";
    }
    std::cout << "\nworst cost gap of Algorithm 1 vs a "
              << opts.iterations << "-move anneal: "
              << formatFixed(100 * worst_gap, 1)
              << "%\n(the paper's 'near-optimal in the reduced "
              << "search space' claim, quantified).\n";
    return 0;
}

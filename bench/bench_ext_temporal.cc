/**
 * @file
 * Extension A7 (paper Section 6, future work): temporal profiling.
 * Reports each benchmark's temporal pair-reuse (how static its
 * coupling set is over time) and compares the layout produced from
 * the plain profile against one produced from a decay-weighted
 * temporal profile.
 */

#include <iostream>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "design/layout_design.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "profile/temporal.hh"

using namespace qpad;
using eval::formatFixed;

int
main()
{
    eval::printHeader(std::cout,
                      "Extension: temporal profiling "
                      "(Section 6 future work)");
    std::cout << "bench             reuse  plain-gates weighted-gates"
              << "  delta\n";

    for (const auto &info : benchmarks::paperSuite()) {
        auto circ = info.generate();
        auto plain = profile::profileCircuit(circ);
        auto temporal = profile::profileTemporal(circ, 8);
        // decay 0.7: early windows weigh ~5x the last window.
        auto weighted = temporal.weighted(0.7, 16);

        auto lay_plain = design::designLayout(plain);
        auto lay_weighted = design::designLayout(weighted);

        arch::Architecture chip_plain(lay_plain.layout, "plain");
        arch::Architecture chip_weighted(lay_weighted.layout,
                                         "weighted");

        auto g_plain =
            mapping::mapCircuit(circ, chip_plain).total_gates;
        auto g_weighted =
            mapping::mapCircuit(circ, chip_weighted).total_gates;

        std::cout << "  " << info.name;
        for (std::size_t pad = info.name.size(); pad < 16; ++pad)
            std::cout << ' ';
        std::cout << formatFixed(temporal.pairReuse(), 2) << "   "
                  << g_plain << "   " << g_weighted << "   "
                  << formatFixed(
                         100.0 * (double(g_plain) - double(g_weighted)) /
                             double(g_plain),
                         1)
                  << "%\n";
    }
    std::cout << "\nReading: high reuse means the coupling set is "
              << "static and temporal weighting\nchanges little "
              << "(the paper's intuition for why the plain profile "
              << "suffices);\nlow-reuse programs are where finer-"
              << "grained temporal profiling could win.\n";
    return 0;
}

/**
 * @file
 * Extension A8: execution-time view of the Pareto trade-off. The
 * paper scores performance by total gate count; this bench re-scores
 * the eff-full sweep with the bus-contention-aware ASAP scheduler,
 * showing that 4-qubit buses buy *fewer gates* but also serialize
 * gates sharing a resonator — so the makespan gain is smaller than
 * the gate-count gain (the crosstalk/contention cost Section 6
 * alludes to).
 */

#include <iostream>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "mapping/schedule.hh"
#include "profile/coupling.hh"

using namespace qpad;
using eval::formatFixed;

int
main()
{
    auto base = bench::paperOptions();

    eval::printHeader(std::cout,
                      "Extension: gate count vs scheduled makespan "
                      "across the bus sweep");
    std::cout << "bench             K  gates  makespan  bus-stalls  "
              << "parallelism\n";

    for (const char *name :
         {"UCCSD_ansatz_8", "cm152a_212", "misex1_241"}) {
        auto circ = benchmarks::getBenchmark(name).generate();
        auto prof = profile::profileCircuit(circ);
        design::DesignFlowOptions flow;
        flow.freq_options = base.freq_options;
        flow.freq_scheme = design::FreqScheme::FiveFrequency;

        for (std::size_t k : {0u, 1u, 2u, 3u, 4u}) {
            flow.max_buses = k;
            auto outcome = design::designArchitecture(
                prof, flow, std::string(name) + "-k" +
                                std::to_string(k));
            if (outcome.architecture.fourQubitBuses().size() < k)
                break;
            auto mapped =
                mapping::mapCircuit(circ, outcome.architecture);
            auto sched = mapping::scheduleCircuit(
                mapped.mapped, outcome.architecture);

            std::cout << "  " << name;
            for (std::size_t pad = std::string(name).size(); pad < 16;
                 ++pad)
                std::cout << ' ';
            std::cout << k << "  " << mapped.total_gates << "  "
                      << sched.makespan << "      "
                      << sched.bus_stall_cycles << "      "
                      << formatFixed(sched.parallelism, 2) << "\n";
        }
    }
    std::cout << "\nExpected shape: gate count falls monotonically "
              << "with K, but bus-stall cycles\ngrow, so makespan "
              << "improves less than gate count — a cost invisible "
              << "to the\npaper's metric and an argument for its "
              << "simplified (fewer-bus) designs.\n";
    return 0;
}

/**
 * @file
 * Experiment E8 (paper Section 5.4.1): effect of the layout design
 * subroutine. eff-layout-only (Algorithm 1 layout, baseline buses
 * and 5-frequency scheme) vs the ibm general-purpose designs: the
 * 2-qubit-bus-only layout point should offer comparable-or-better
 * performance than ibm(2) at ~35x (paper average) higher yield.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "eval/experiment.hh"
#include "eval/report.hh"

using namespace qpad;
using eval::formatFixed;
using eval::formatYield;

int
main()
{
    auto options = bench::paperOptions();
    options.run_eff_full = false;
    options.run_eff_5_freq = false;
    options.run_eff_rd_bus = false;

    eval::printHeader(std::cout,
                      "Section 5.4.1: layout design effect "
                      "(eff-layout-only vs ibm)");
    std::cout << "bench             variant       Q conn  gates   "
              << "yield      vs ibm(2): perf, yield\n";

    std::vector<double> yield_ratios;
    std::vector<double> perf_ratios;
    for (const auto &info : benchmarks::paperSuite()) {
        auto e = eval::runBenchmark(info, options);
        const eval::DataPoint *ibm2 = nullptr;
        for (const auto &p : e.points)
            if (p.arch_name == "ibm-16q-4qbus")
                ibm2 = &p;
        for (const auto *p : e.config("eff-layout-only")) {
            bool two_q = p->arch_name.find("-2q") != std::string::npos;
            std::cout << "  " << info.name;
            for (std::size_t pad = info.name.size(); pad < 16; ++pad)
                std::cout << ' ';
            std::cout << (two_q ? "2q-bus only " : "max 4q-bus  ")
                      << p->num_qubits << " " << p->num_edges << "   "
                      << p->gate_count << "   "
                      << formatYield(p->yield);
            if (two_q && ibm2) {
                double perf =
                    double(ibm2->gate_count) / p->gate_count - 1.0;
                perf_ratios.push_back(perf);
                std::cout << "   " << formatFixed(100 * perf, 1) << "%";
                double floor = ibm2->yield_trials > 0
                                   ? 1.0 / double(ibm2->yield_trials)
                                   : 1e-7;
                double denom = std::max(ibm2->yield, floor);
                if (p->yield > 0) {
                    double yr = p->yield / denom;
                    yield_ratios.push_back(yr);
                    std::cout << ", "
                              << (ibm2->yield > 0 ? "" : ">=")
                              << formatFixed(yr, 1) << "x";
                } else {
                    // Both chips below the Monte Carlo floor: the
                    // ratio is genuinely unresolved.
                    std::cout << ", n/a (both below MC floor)";
                }
            }
            std::cout << "\n";
        }
    }
    std::cout << "\ngeomean yield gain of the 2q-only optimized "
              << "layout over ibm(2), over the\n"
              << yield_ratios.size()
              << " benchmarks where both yields are measurable: "
              << formatFixed(eval::geomean(yield_ratios), 1)
              << "x  (paper: ~35x average)\n";
    double mean_perf = 0;
    for (double p : perf_ratios)
        mean_perf += p;
    if (!perf_ratios.empty())
        mean_perf /= perf_ratios.size();
    std::cout << "mean performance delta vs ibm(2): "
              << formatFixed(100 * mean_perf, 1)
              << "%  (paper: better or comparable most of the time)\n";
    return 0;
}

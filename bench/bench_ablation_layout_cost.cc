/**
 * @file
 * Ablation A2: Algorithm 1's cost function. Compares three
 * placements — Algorithm 1 (strength x distance), naive row-major
 * packing, and random placement — by (a) the placement cost
 * functional and (b) the post-mapping gate count on the resulting
 * 2-qubit-bus chip.
 */

#include <iostream>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "common/rng.hh"
#include "design/layout_design.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"

using namespace qpad;
using eval::formatFixed;

namespace
{

std::size_t
gatesOn(const std::vector<arch::Coord> &coords,
        const circuit::Circuit &circ)
{
    arch::Layout layout;
    for (const auto &c : coords)
        layout.addQubit(c);
    arch::Architecture chip(layout, "probe");
    if (!chip.isConnectedGraph())
        return 0; // random placement may disconnect; report as n/a
    return mapping::mapCircuit(circ, chip).total_gates;
}

} // namespace

int
main()
{
    eval::printHeader(std::cout,
                      "Ablation: layout cost function (Algorithm 1 "
                      "vs naive vs random)");
    std::cout << "bench             alg1-cost naive-cost rand-cost |"
              << " alg1-gates naive-gates\n";

    for (const auto &info : benchmarks::paperSuite()) {
        auto circ = info.generate();
        auto prof = profile::profileCircuit(circ);
        auto designed = design::designLayout(prof);

        // Naive row-major packing on a width-4 strip.
        std::vector<arch::Coord> naive(prof.num_qubits);
        for (std::size_t q = 0; q < prof.num_qubits; ++q)
            naive[q] = {int(q) / 4, int(q) % 4};

        // Random permutation of the same strip.
        Rng rng(314159);
        std::vector<arch::Coord> random = naive;
        for (std::size_t i = random.size(); i > 1; --i)
            std::swap(random[i - 1], random[rng.below(i)]);

        uint64_t c_alg1 = designed.placement_cost;
        uint64_t c_naive = design::placementCost(prof, naive);
        uint64_t c_rand = design::placementCost(prof, random);

        std::size_t g_alg1 = gatesOn(designed.coord_of_logical, circ);
        std::size_t g_naive = gatesOn(naive, circ);

        std::cout << "  " << info.name;
        for (std::size_t pad = info.name.size(); pad < 16; ++pad)
            std::cout << ' ';
        std::cout << c_alg1 << "  " << c_naive << "  " << c_rand
                  << "  |  " << g_alg1 << "  " << g_naive << "\n";
    }
    std::cout << "\nExpected shape: alg1-cost <= naive-cost <= "
              << "rand-cost, and the gate counts track the cost "
              << "functional\n(the heuristic is a faithful proxy for "
              << "routing overhead).\n";
    return 0;
}

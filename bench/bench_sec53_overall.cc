/**
 * @file
 * Experiment E6 (paper Section 5.3): headline Pareto comparisons.
 *
 * Paper claims reproduced in shape:
 *  - the most simplified eff-full design beats ibm(1) (16q, 2-qubit
 *    buses) in BOTH performance (~7.7%) and yield (~4x);
 *  - against ibm(2) (16q + four 4-qubit buses): orders of magnitude
 *    yield gain with small (<~1%) performance loss;
 *  - against ibm(4) (20q + six 4-qubit buses): ~1000x yield gain for
 *    a few percent performance loss;
 *  - controllability: varying K trades ~10-50x yield for 10-33%
 *    performance.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "eval/experiment.hh"
#include "eval/report.hh"

using namespace qpad;
using eval::formatFixed;
using eval::formatYield;

namespace
{

struct Row
{
    std::string benchmark;
    double perf_vs_ibm1 = 0;  // gates(ibm1) / gates(eff-min) - 1
    double yield_vs_ibm1 = 0; // yield(eff-min) / yield(ibm1)
    double perf_vs_ibm2 = 0;  // gates(eff-min) / gates(ibm2) - 1
    double yield_vs_ibm2 = 0;
    double perf_vs_ibm4 = 0;  // gates(eff-max) / gates(ibm4) - 1
    double yield_vs_ibm4 = 0;
    double ctrl_yield = 0;    // yield range within eff-full
    double ctrl_perf = 0;     // perf range within eff-full
};

const eval::DataPoint *
byName(const eval::BenchmarkExperiment &e, const std::string &name)
{
    for (const auto &p : e.points)
        if (p.arch_name == name)
            return &p;
    return nullptr;
}

} // namespace

int
main()
{
    auto options = bench::paperOptions();
    options.run_eff_rd_bus = false;
    options.run_eff_5_freq = false;
    options.run_eff_layout_only = false;

    eval::printHeader(std::cout,
                      "Section 5.3: overall improvement vs IBM "
                      "baselines");

    std::vector<Row> rows;
    for (const auto &info : benchmarks::paperSuite()) {
        auto e = eval::runBenchmark(info, options);
        auto eff = e.config("eff-full");
        if (eff.empty())
            continue;
        const auto *eff_min = eff.front(); // K = 0
        const auto *eff_max = eff.back();  // max beneficial K
        const auto *ibm1 = byName(e, "ibm-16q-2qbus");
        const auto *ibm2 = byName(e, "ibm-16q-4qbus");
        const auto *ibm4 = byName(e, "ibm-20q-4qbus");

        Row row;
        row.benchmark = info.name;
        // When the baseline yield is below the Monte Carlo floor,
        // clamp the denominator at 1/trials: the reported ratio is
        // then a conservative LOWER bound on the true gain.
        auto safe_ratio = [](double a, const eval::DataPoint *p) {
            double floor = p->yield_trials > 0
                               ? 1.0 / double(p->yield_trials)
                               : 1e-7;
            return a / std::max(p->yield, floor);
        };
        if (ibm1) {
            row.perf_vs_ibm1 =
                double(ibm1->gate_count) / eff_min->gate_count - 1.0;
            row.yield_vs_ibm1 = safe_ratio(eff_min->yield, ibm1);
        }
        if (ibm2) {
            row.perf_vs_ibm2 =
                double(eff_min->gate_count) / ibm2->gate_count - 1.0;
            row.yield_vs_ibm2 = safe_ratio(eff_min->yield, ibm2);
        }
        if (ibm4) {
            row.perf_vs_ibm4 =
                double(eff_max->gate_count) / ibm4->gate_count - 1.0;
            row.yield_vs_ibm4 = safe_ratio(eff_max->yield, ibm4);
        }
        double min_y = 1e18, max_y = 0, min_g = 1e18, max_g = 0;
        for (const auto *p : eff) {
            min_y = std::min(min_y, p->yield);
            max_y = std::max(max_y, p->yield);
            min_g = std::min(min_g, double(p->gate_count));
            max_g = std::max(max_g, double(p->gate_count));
        }
        row.ctrl_yield = min_y > 0 ? max_y / min_y : 0.0;
        row.ctrl_perf = max_g / min_g - 1.0;
        rows.push_back(row);

        std::cout << info.name << ":\n"
                  << "  eff-min vs ibm(1): perf "
                  << formatFixed(100 * row.perf_vs_ibm1, 1)
                  << "% better, yield "
                  << formatFixed(row.yield_vs_ibm1, 1) << "x\n"
                  << "  eff-min vs ibm(2): perf loss "
                  << formatFixed(100 * row.perf_vs_ibm2, 1)
                  << "%, yield " << formatFixed(row.yield_vs_ibm2, 0)
                  << "x\n"
                  << "  eff-max vs ibm(4): perf loss "
                  << formatFixed(100 * row.perf_vs_ibm4, 1)
                  << "%, yield " << formatFixed(row.yield_vs_ibm4, 0)
                  << "x\n"
                  << "  controllability inside eff-full: "
                  << formatFixed(row.ctrl_yield, 1)
                  << "x yield range for "
                  << formatFixed(100 * row.ctrl_perf, 1)
                  << "% gate-count range\n";
    }

    // Aggregate (geometric means; paper reports averages).
    std::vector<double> y1, y2, y4, p1, p2, p4;
    for (const auto &r : rows) {
        if (r.yield_vs_ibm1 > 0)
            y1.push_back(r.yield_vs_ibm1);
        if (r.yield_vs_ibm2 > 0)
            y2.push_back(r.yield_vs_ibm2);
        if (r.yield_vs_ibm4 > 0)
            y4.push_back(r.yield_vs_ibm4);
        p1.push_back(r.perf_vs_ibm1);
        p2.push_back(r.perf_vs_ibm2);
        p4.push_back(r.perf_vs_ibm4);
    }
    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return v.empty() ? 0.0 : s / v.size();
    };
    std::cout << "\n=== aggregate (paper Section 5.3 claims) ===\n";
    std::cout << "geomean yield gain vs ibm(1): "
              << formatFixed(eval::geomean(y1), 1)
              << "x  (paper: ~4x);  mean perf gain: "
              << formatFixed(100 * mean(p1), 1)
              << "%  (paper: ~7.7%)\n";
    std::cout << "geomean yield gain vs ibm(2): "
              << formatFixed(eval::geomean(y2), 0)
              << "x  (paper: >100x);  mean perf loss: "
              << formatFixed(100 * mean(p2), 1)
              << "%  (paper: <1%)\n";
    std::cout << "geomean yield gain vs ibm(4): "
              << formatFixed(eval::geomean(y4), 0)
              << "x  (paper: ~1000x);  mean perf loss: "
              << formatFixed(100 * mean(p4), 1)
              << "%  (paper: ~3.5%)\n";
    return 0;
}

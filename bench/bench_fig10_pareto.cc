/**
 * @file
 * Experiment E5 (paper Figure 10): the main result. For each of the
 * twelve benchmarks, prints the yield vs normalized-reciprocal-gate-
 * count series of all five experiment configurations (ibm, eff-full,
 * eff-5-freq, eff-rd-bus, eff-layout-only).
 *
 * The paper's reading: eff-full points sit up and to the right of
 * the ibm baselines (better Pareto front); ising_model_16 collapses
 * to a vertical line (Section 5.3.1); qft_16's bus selection behaves
 * like random selection (Section 5.4.2).
 *
 * Set QPAD_FIG10_CSV=1 to additionally emit machine-readable CSV,
 * or QPAD_FIG10_CSV=only for CSV alone (no report text — the CSV is
 * then byte-identical between cold and warm cache passes, which the
 * CI two-pass job cmp-checks; the report would differ in its cache-
 * statistics line). QPAD_DEADLINE_MS=<millis> arms a deadline on the
 * sweep's request context; if it expires the run stops within one
 * chunk of work and exits 4 (CI gates on both the exit code and the
 * stop latency). QPAD_FIG10_SUITE=<substring>[,<substring>...]
 * restricts the sweep to matching benchmark names. --expect-warm
 * exits nonzero unless the sweep was FULLY warm: at least one
 * result-cache hit and zero misses. (Hits alone would not prove a
 * warm cache — a multi-benchmark sweep re-evaluates the ibm
 * baselines with identical keys and hits its own intra-run inserts;
 * a cold run necessarily misses its first lookups, so the zero-miss
 * requirement is what ties the gate to pre-populated state.)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "eval/experiment.hh"
#include "eval/report.hh"
#include "exec/cancel.hh"
#include "exec/context.hh"

using namespace qpad;

namespace
{

/** Does `name` match the QPAD_FIG10_SUITE filter (empty = all)? */
bool
suiteSelected(const std::string &name)
{
    const char *filter = std::getenv("QPAD_FIG10_SUITE");
    if (!filter || !*filter)
        return true;
    std::string list(filter);
    for (std::size_t pos = 0; pos < list.size();) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(pos, comma - pos);
        if (!item.empty() && name.find(item) != std::string::npos)
            return true;
        pos = comma + 1;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    bool expect_warm = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--expect-warm") == 0) {
            expect_warm = true;
        } else {
            std::fprintf(stderr, "usage: %s [--expect-warm]\n",
                         argv[0]);
            return 2;
        }
    }
    auto options = bench::paperOptions();
    const exec::Context ctx = bench::requestContext();
    // Request-scoped telemetry for the sweep: every span, log event,
    // and flight-recorder entry below carries this request's id (the
    // first context of the process, so id 1 — CI greps the deadline
    // dump for it). Observability only; stdout is unchanged.
    exec::RequestScope scope(ctx, "fig10_pareto");
    const char *csv_env = std::getenv("QPAD_FIG10_CSV");
    const bool csv = csv_env != nullptr;
    const bool csv_only = csv && std::strcmp(csv_env, "only") == 0;

    if (!csv_only) {
        eval::printHeader(std::cout,
                          "Figure 10: yield vs normalized "
                          "1/gate-count, five configurations");
        std::cout << "yield trials = " << options.yield_options.trials
                  << ", sigma = "
                  << options.yield_options.sigma_ghz * 1000
                  << " MHz\n\n";
    }

    std::size_t cache_hits = 0, cache_misses = 0;
    bool csv_header = true;
    try {
        for (const auto &info : benchmarks::paperSuite()) {
            if (!suiteSelected(info.name))
                continue;
            auto experiment = eval::runBenchmark(info, options, ctx);
            cache_hits += experiment.cache_stats.hits;
            cache_misses += experiment.cache_stats.misses;
            if (!csv_only)
                eval::printExperiment(std::cout, experiment);
            if (csv) {
                eval::printExperimentCsv(std::cout, experiment,
                                         csv_header);
                csv_header = false;
            }
            if (csv_only)
                continue;

            // Per-benchmark headline, matching Section 5.3: the most
            // simplified eff design against ibm(1), and the richest
            // eff design against ibm(4).
            const eval::DataPoint *ibm1 = nullptr, *ibm4 = nullptr;
            for (const auto &p : experiment.points) {
                if (p.arch_name == "ibm-16q-2qbus")
                    ibm1 = &p;
                if (p.arch_name == "ibm-20q-4qbus")
                    ibm4 = &p;
            }
            auto eff = experiment.config("eff-full");
            if (ibm1 && ibm4 && !eff.empty()) {
                const auto *eff_min = eff.front();
                const auto *eff_max = eff.back();
                auto ratio_cell = [](double num,
                                     const eval::DataPoint *den) {
                    double floor = den->yield_trials > 0
                                       ? 1.0 / double(den->yield_trials)
                                       : 1e-7;
                    std::string prefix = den->yield > 0 ? "" : ">=";
                    return prefix +
                           eval::formatFixed(
                               num / std::max(den->yield, floor), 1) +
                           "x";
                };
                std::cout
                    << "  summary: eff-min vs ibm(1): yield "
                    << ratio_cell(eff_min->yield, ibm1) << ", gates "
                    << eval::formatFixed(double(eff_min->gate_count) /
                                             ibm1->gate_count,
                                         3)
                    << ";  eff-max vs ibm(4): yield "
                    << ratio_cell(eff_max->yield, ibm4) << ", gates "
                    << eval::formatFixed(double(eff_max->gate_count) /
                                             ibm4->gate_count,
                                         3)
                    << "\n";
            }
            std::cout << "\n";
        }
    } catch (const exec::CancelledError &e) {
        // Distinct from the usage (2) and --expect-warm (3) exits so
        // CI can gate on "the deadline, and nothing else, fired".
        // Naming the request id ties the stderr line to the flight
        // dump and request report for the same run.
        std::fprintf(stderr,
                     "qpad bench: fig10 sweep stopped (request %llu): "
                     "%s\n",
                     (unsigned long long)scope.id(), e.what());
        return 4;
    }
    if (expect_warm && (cache_hits == 0 || cache_misses != 0)) {
        std::cerr << "--expect-warm: run was not fully warm ("
                  << cache_hits << " hits, " << cache_misses
                  << " misses; is QPAD_CACHE_DIR set and "
                     "populated?)\n";
        return 3;
    }
    return 0;
}

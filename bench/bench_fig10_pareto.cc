/**
 * @file
 * Experiment E5 (paper Figure 10): the main result. For each of the
 * twelve benchmarks, prints the yield vs normalized-reciprocal-gate-
 * count series of all five experiment configurations (ibm, eff-full,
 * eff-5-freq, eff-rd-bus, eff-layout-only).
 *
 * The paper's reading: eff-full points sit up and to the right of
 * the ibm baselines (better Pareto front); ising_model_16 collapses
 * to a vertical line (Section 5.3.1); qft_16's bus selection behaves
 * like random selection (Section 5.4.2).
 *
 * Set QPAD_FIG10_CSV=1 to additionally emit machine-readable CSV.
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "eval/experiment.hh"
#include "eval/report.hh"

using namespace qpad;

int
main()
{
    auto options = bench::paperOptions();
    const bool csv = std::getenv("QPAD_FIG10_CSV") != nullptr;

    eval::printHeader(std::cout,
                      "Figure 10: yield vs normalized 1/gate-count, "
                      "five configurations");
    std::cout << "yield trials = " << options.yield_options.trials
              << ", sigma = "
              << options.yield_options.sigma_ghz * 1000 << " MHz\n\n";

    bool csv_header = true;
    for (const auto &info : benchmarks::paperSuite()) {
        auto experiment = eval::runBenchmark(info, options);
        eval::printExperiment(std::cout, experiment);
        if (csv) {
            eval::printExperimentCsv(std::cout, experiment, csv_header);
            csv_header = false;
        }

        // Per-benchmark headline, matching Section 5.3: the most
        // simplified eff design against ibm(1), and the richest eff
        // design against ibm(4).
        const eval::DataPoint *ibm1 = nullptr, *ibm4 = nullptr;
        for (const auto &p : experiment.points) {
            if (p.arch_name == "ibm-16q-2qbus")
                ibm1 = &p;
            if (p.arch_name == "ibm-20q-4qbus")
                ibm4 = &p;
        }
        auto eff = experiment.config("eff-full");
        if (ibm1 && ibm4 && !eff.empty()) {
            const auto *eff_min = eff.front();
            const auto *eff_max = eff.back();
            auto ratio_cell = [](double num,
                                 const eval::DataPoint *den) {
                double floor = den->yield_trials > 0
                                   ? 1.0 / double(den->yield_trials)
                                   : 1e-7;
                std::string prefix = den->yield > 0 ? "" : ">=";
                return prefix +
                       eval::formatFixed(
                           num / std::max(den->yield, floor), 1) +
                       "x";
            };
            std::cout << "  summary: eff-min vs ibm(1): yield "
                      << ratio_cell(eff_min->yield, ibm1)
                      << ", gates "
                      << eval::formatFixed(double(eff_min->gate_count) /
                                               ibm1->gate_count,
                                           3)
                      << ";  eff-max vs ibm(4): yield "
                      << ratio_cell(eff_max->yield, ibm4)
                      << ", gates "
                      << eval::formatFixed(double(eff_max->gate_count) /
                                               ibm4->gate_count,
                                           3)
                      << "\n";
        }
        std::cout << "\n";
    }
    return 0;
}

/**
 * @file
 * Experiment E9 (paper Section 5.4.2): quality of the weighted
 * 4-qubit bus selection. eff-full's (yield, gates) points are
 * compared against random bus placements with the same bus count:
 * the weighted choice should dominate or match the random samples'
 * envelope — except for qft_16, whose uniform coupling pattern
 * makes weighted selection equivalent to random (paper's noted
 * worst case), and the small benchmarks where the option space is
 * tiny.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "eval/experiment.hh"
#include "eval/report.hh"

using namespace qpad;
using eval::formatFixed;
using eval::formatYield;

int
main()
{
    auto options = bench::paperOptions();
    options.run_ibm = false;
    options.run_eff_5_freq = false;
    options.run_eff_layout_only = false;
    options.random_bus_samples =
        bench::fastMode() ? 3 : 8; // scatter like Figure 10

    eval::printHeader(std::cout,
                      "Section 5.4.2: weighted vs random 4-qubit bus "
                      "selection");

    for (const auto &info : benchmarks::paperSuite()) {
        auto e = eval::runBenchmark(info, options);
        auto eff = e.config("eff-full");
        auto rd = e.config("eff-rd-bus");
        if (eff.size() <= 1) {
            std::cout << info.name
                      << ": no 4-qubit bus is beneficial (chain "
                      << "pattern) - weighted selection adds none\n";
            continue;
        }
        std::cout << info.name << ":\n";
        std::cout << "  weighted (eff-full):";
        for (const auto *p : eff)
            std::cout << "  [" << p->num_buses << " buses: "
                      << p->gate_count << " gates, "
                      << formatYield(p->yield) << "]";
        std::cout << "\n  random   (eff-rd-bus):";
        for (const auto *p : rd)
            std::cout << "  [" << p->num_buses << " buses: "
                      << p->gate_count << " gates, "
                      << formatYield(p->yield) << "]";
        std::cout << "\n";

        // Compare at matched bus count: weighted gates must be <=
        // the random mean (performance is what bus selection buys).
        std::map<std::size_t, std::pair<double, int>> random_gates;
        for (const auto *p : rd) {
            auto &[sum, count] = random_gates[p->num_buses];
            sum += double(p->gate_count);
            ++count;
        }
        for (const auto *p : eff) {
            auto it = random_gates.find(p->num_buses);
            if (it == random_gates.end() || p->num_buses == 0)
                continue;
            double mean = it->second.first / it->second.second;
            std::cout << "  at " << p->num_buses
                      << " buses: weighted " << p->gate_count
                      << " gates vs random mean "
                      << formatFixed(mean, 0) << " ("
                      << formatFixed(100 * (mean / p->gate_count - 1),
                                     1)
                      << "% worse than weighted)\n";
        }
    }
    std::cout << "\nExpected shape: weighted selection <= random mean "
              << "gates at equal bus count\nfor the structured "
              << "benchmarks; qft_16 shows no advantage (uniform "
              << "pattern).\n";
    return 0;
}

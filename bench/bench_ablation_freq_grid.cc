/**
 * @file
 * Ablation A4: frequency allocator resolution. Sweeps the candidate
 * grid step (the paper uses 10 MHz: "we can also have more
 * candidate frequencies but it will take more time") and the
 * local-region Monte Carlo budget, plus the refinement sweeps qpad
 * adds on top of Algorithm 3.
 */

#include <chrono>
#include <iostream>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "cache/yield_cache.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

using namespace qpad;
using eval::formatYield;

int
main()
{
    eval::printHeader(std::cout,
                      "Ablation: frequency allocator grid step, "
                      "trials, refinement");

    auto base = bench::paperOptions();
    auto circ = benchmarks::getBenchmark("misex1_241").generate();
    auto prof = profile::profileCircuit(circ);
    auto layout = design::designLayout(prof);
    arch::Architecture chip(layout.layout, "misex1-chip");
    auto buses = design::selectBuses(chip, prof, 2);
    design::applyBusSelection(chip, buses);

    auto yopts = base.yield_options;

    std::cout << "grid(MHz) trials sweeps   alloc-time  yield\n";
    for (double grid_mhz : {20.0, 10.0, 5.0}) {
        for (std::size_t trials :
             {std::size_t(500), std::size_t(2000)}) {
            for (unsigned sweeps : {0u, 2u}) {
                design::FreqAllocOptions fopts = base.freq_options;
                fopts.grid_step_ghz = grid_mhz / 1000.0;
                fopts.local_trials = trials;
                fopts.refine_sweeps = sweeps;

                // Cached front end: a warm rerun reports the
                // near-zero hit time instead of the allocation cost
                // (which is the point — the sweep itself is cheap to
                // repeat once the cache is populated).
                auto t0 = std::chrono::steady_clock::now();
                auto alloc =
                    cache::cachedAllocateFrequencies(chip, fopts);
                auto ms =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

                arch::Architecture probe = chip;
                probe.setAllFrequencies(alloc.freqs);
                auto y = cache::cachedEstimateYield(probe, yopts);
                std::cout << "  " << grid_mhz << "      " << trials
                          << "   " << sweeps << "       " << ms
                          << " ms      " << formatYield(y.yield)
                          << "\n";
            }
        }
    }
    std::cout << "\nExpected shape: finer grids and more trials give "
              << "equal-or-better yields at\nhigher allocation cost; "
              << "refinement sweeps are the biggest single win.\n";
    return 0;
}

/**
 * @file
 * Extension A6 (paper Section 6, future work): auxiliary routing
 * qubits. Adds 0..3 auxiliary physical qubits to the generated
 * layouts and reports the performance/yield trade they buy — the
 * mirror image of the 4-qubit-bus knob.
 */

#include <iostream>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "cache/yield_cache.hh"
#include "design/auxiliary.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

using namespace qpad;
using eval::formatYield;

int
main()
{
    auto base = bench::paperOptions();

    eval::printHeader(std::cout,
                      "Extension: auxiliary routing qubits "
                      "(Section 6 future work)");
    std::cout << "bench             aux  Q conn  gates  swaps  yield\n";

    for (const char *name :
         {"qft_16", "misex1_241", "cm152a_212", "square_root_7"}) {
        auto circ = benchmarks::getBenchmark(name).generate();
        auto prof = profile::profileCircuit(circ);
        auto layout = design::designLayout(prof);

        std::size_t last_added = SIZE_MAX;
        for (std::size_t n_aux : {0u, 1u, 2u, 3u}) {
            auto aux =
                design::addAuxiliaryQubits(layout.layout, prof, n_aux);
            if (aux.added.size() == last_added)
                break; // no further beneficial node exists
            last_added = aux.added.size();
            arch::Architecture chip(aux.layout,
                                    std::string(name) + "-aux" +
                                        std::to_string(n_aux));
            design::FreqAllocOptions fopts = base.freq_options;
            design::applyOptimizedFrequencies(chip, fopts);

            auto mapped = mapping::mapCircuit(circ, chip);
            auto y =
                cache::cachedEstimateYield(chip, base.yield_options);

            std::cout << "  " << name;
            for (std::size_t pad = std::string(name).size(); pad < 16;
                 ++pad)
                std::cout << ' ';
            std::cout << aux.added.size() << "   " << chip.numQubits()
                      << " " << chip.numEdges() << "   "
                      << mapped.total_gates << "   " << mapped.swaps
                      << "   " << formatYield(y.yield) << "\n";
        }
    }
    std::cout << "\nExpected shape: each auxiliary qubit reduces the "
              << "post-mapping gate count\n(more routing freedom) "
              << "and reduces yield (more qubits and connections) — "
              << "the\nsame Pareto frontier the 4-qubit-bus knob "
              << "walks, from the other side.\n";
    return 0;
}

/**
 * @file
 * Experiment E1 (paper Figure 3): the seven frequency-collision
 * conditions. Prints the condition/threshold table and, as a
 * behavioural check of the yield model, the fraction of Monte Carlo
 * fabrication attempts in which each condition fires on the IBM
 * baseline chips.
 */

#include <iostream>

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "cache/yield_cache.hh"
#include "eval/report.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

int
main()
{
    eval::printHeader(std::cout,
                      "Figure 3: frequency collision conditions");

    yield::CollisionModel model;
    std::cout << "condition  relation                     threshold\n";
    std::cout << "1          f_j ~ f_k                    +-"
              << model.thr1 * 1000 << " MHz\n";
    std::cout << "2          f_j ~ f_k - delta/2          +-"
              << model.thr2 * 1000 << " MHz\n";
    std::cout << "3          f_j ~ f_k - delta            +-"
              << model.thr3 * 1000 << " MHz\n";
    std::cout << "4          f_j >  f_k - delta           (none)\n";
    std::cout << "5          f_i ~ f_k    (common j)      +-"
              << model.thr5 * 1000 << " MHz\n";
    std::cout << "6          f_i ~ f_k - delta (common j) +-"
              << model.thr6 * 1000 << " MHz\n";
    std::cout << "7          2f_j + delta ~ f_k + f_i     +-"
              << model.thr7 * 1000 << " MHz\n";
    std::cout << "delta (anharmonicity) = " << model.delta * 1000
              << " MHz, band = ["
              << arch::DeviceConstants::freq_min_ghz << ", "
              << arch::DeviceConstants::freq_max_ghz << "] GHz\n\n";

    auto opts = bench::paperOptions().yield_options;
    opts.collect_condition_stats = true;

    std::cout << "Per-condition incidence (fraction of fabrication "
              << "attempts with >= 1 hit),\nsigma = "
              << opts.sigma_ghz * 1000 << " MHz, " << opts.trials
              << " trials:\n\n";
    std::cout << "architecture     yield      c1     c2     c3     c4"
              << "     c5     c6     c7\n";
    for (const auto &arch : arch::ibmBaselines()) {
        // Cached front end: repeated sweeps under QPAD_CACHE_DIR are
        // served warm (condition statistics are part of the key).
        auto r = cache::cachedEstimateYield(arch, opts);
        std::cout << "  " << arch.name();
        for (std::size_t pad = arch.name().size(); pad < 15; ++pad)
            std::cout << ' ';
        std::cout << eval::formatYield(r.yield);
        for (int c = 1; c <= 7; ++c)
            std::cout << "  "
                      << eval::formatFixed(
                             double(r.condition_trials[c]) / r.trials,
                             3);
        std::cout << "\n";
    }
    std::cout << "\nExpected shape: conditions with wide thresholds "
              << "(1, 3, 5, 6) dominate;\nchips with 4-qubit buses "
              << "(more edges and triples) fail more often.\n";
    return 0;
}

/**
 * @file
 * Ablation A1: fabrication precision sweep. The paper fixes
 * sigma = 30 MHz ("a realistic extrapolation of progress"); this
 * bench shows how the yield of the baselines and of one
 * application-specific design scales when sigma moves between
 * IBM's historic values (200 MHz -> 130 MHz) and the projection.
 */

#include <iostream>

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "cache/yield_cache.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

using namespace qpad;
using eval::formatYield;

int
main()
{
    eval::printHeader(std::cout,
                      "Ablation: yield vs fabrication precision "
                      "sigma");

    auto base = bench::paperOptions();

    // One representative application-specific design (UCCSD, K=1).
    auto circ = benchmarks::getBenchmark("UCCSD_ansatz_8").generate();
    auto prof = profile::profileCircuit(circ);
    design::DesignFlowOptions flow;
    flow.max_buses = 1;
    flow.freq_options = base.freq_options;
    auto eff = design::designArchitecture(prof, flow, "eff-uccsd-k1");

    std::vector<arch::Architecture> chips = arch::ibmBaselines();
    chips.push_back(eff.architecture);

    std::cout << "sigma(MHz)";
    for (const auto &a : chips)
        std::cout << "  " << a.name();
    std::cout << "\n";

    for (double sigma_mhz : {10.0, 20.0, 30.0, 60.0, 130.0, 200.0}) {
        auto yopts = base.yield_options;
        yopts.sigma_ghz = sigma_mhz / 1000.0;
        std::cout << "  " << sigma_mhz << "   ";
        // Each (chip, sigma) point is its own cache key, so a warm
        // rerun of the sweep costs no Monte Carlo at all.
        for (const auto &a : chips)
            std::cout << "  " << formatYield(
                cache::cachedEstimateYield(a, yopts).yield);
        std::cout << "\n";
    }
    std::cout << "\nExpected shape: yield decays rapidly with sigma; "
              << "at IBM's historic 130-200 MHz\nall multi-qubit "
              << "chips are impractical (the paper's motivation for "
              << "the 30 MHz projection),\nand the application-"
              << "specific design dominates at every sigma.\n";
    return 0;
}

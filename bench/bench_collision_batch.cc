/**
 * @file
 * Microbenchmark of the collision-check inner loop: scalar
 * CollisionChecker::anyCollision versus the batched SoA kernel
 * (BatchCollisionChecker::survivorMask), single-threaded, on
 * pre-generated post-fabrication frequency blocks so only the
 * kernels themselves are timed.
 *
 * Two workloads bracket the real Monte Carlo:
 *  - "surviving-heavy": tiny fabrication noise on a well-separated
 *    assignment, so nearly every trial scans every term (the regime
 *    the batched kernel is built for);
 *  - "colliding-heavy": the paper's sigma = 30 MHz on the bused
 *    16-qubit chip, where most trials die early and the scalar
 *    kernel's short-circuit is at its best (the batch relies on its
 *    all-lanes-dead early-out here).
 *
 * The two kernels must agree trial-for-trial; any mismatch exits
 * nonzero. QPAD_FAST reduces the trial budget.
 */

#include <bit>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "design/freq_alloc.hh"
#include "eval/report.hh"
#include "yield/collision_batch.hh"

using namespace qpad;
using yield::BatchCollisionChecker;
using yield::CollisionChecker;

namespace
{

constexpr std::size_t B = BatchCollisionChecker::kLanes;

struct KernelTimes
{
    double scalar_ns_per_trial = 0.0;
    double batch_ns_per_trial = 0.0;
    double survivor_fraction = 0.0;
    bool agree = true;
};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Time both kernels over `reps` passes of a `trials`-sized working
 * set drawn as freqs + N(0, sigma).
 */
KernelTimes
run(const arch::Architecture &arch, double sigma_ghz,
    std::size_t trials, std::size_t reps)
{
    const CollisionChecker checker(arch);
    const BatchCollisionChecker batch(checker);
    const std::size_t nq = arch.numQubits();
    const std::vector<double> &freqs = arch.frequencies();

    // One shared working set, laid out both trial-major (scalar) and
    // qubit-major lane blocks (batched) so the kernels see identical
    // trials.
    const std::size_t blocks = (trials + B - 1) / B;
    std::vector<std::vector<double>> rows(trials,
                                          std::vector<double>(nq));
    std::vector<double> soa(blocks * nq * B, 5.0);
    Rng rng(2020);
    for (std::size_t t = 0; t < trials; ++t)
        for (std::size_t q = 0; q < nq; ++q) {
            const double v = rng.gaussian(freqs[q], sigma_ghz);
            rows[t][q] = v;
            soa[BatchCollisionChecker::soaIndex(t, q, nq)] = v;
        }

    using clock = std::chrono::steady_clock;
    KernelTimes result;

    std::size_t scalar_ok = 0;
    auto s0 = clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep)
        for (std::size_t t = 0; t < trials; ++t)
            scalar_ok += !checker.anyCollision(rows[t]);
    auto s1 = clock::now();

    std::size_t batch_ok = 0;
    auto b0 = clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep)
        for (std::size_t bi = 0; bi < blocks; ++bi) {
            const std::size_t active =
                std::min(B, trials - bi * B);
            batch_ok += std::size_t(std::popcount(
                batch.survivorMask(&soa[bi * nq * B], active)));
        }
    auto b1 = clock::now();

    const double total = double(trials) * double(reps);
    result.scalar_ns_per_trial = seconds(s0, s1) / total * 1e9;
    result.batch_ns_per_trial = seconds(b0, b1) / total * 1e9;
    result.survivor_fraction = double(scalar_ok) / total;
    result.agree = scalar_ok == batch_ok;

    // Trial-for-trial agreement on the first pass (the aggregate
    // comparison above could mask compensating errors).
    for (std::size_t t = 0; t < trials && result.agree; ++t) {
        const uint8_t mask = batch.survivorMask(
            &soa[(t / B) * nq * B], std::min(B, trials - (t / B) * B));
        const bool batch_survives = (mask >> (t % B)) & 1;
        if (batch_survives != !checker.anyCollision(rows[t]))
            result.agree = false;
    }
    return result;
}

int
report(const char *label, const KernelTimes &k)
{
    std::printf("%-18s %10.1f %10.1f %9.2fx %10.3f%s\n", label,
                k.scalar_ns_per_trial, k.batch_ns_per_trial,
                k.scalar_ns_per_trial / k.batch_ns_per_trial,
                k.survivor_fraction,
                k.agree ? "" : "  MISMATCH!");
    return k.agree ? 0 : 1;
}

} // namespace

int
main()
{
    eval::printHeader(std::cout,
                      "Collision kernel: scalar vs batched SoA");

    const std::size_t trials = 4096;
    const std::size_t reps = bench::fastMode() ? 50 : 500;
    std::printf("trials per pass: %zu, passes: %zu\n\n", trials, reps);
    std::printf("%-18s %10s %10s %10s %10s\n", "workload",
                "scalar ns", "batch ns", "speedup", "survive");

    int rc = 0;

    // Surviving-heavy: a 32-qubit path with the period-3 pattern
    // 5.00/5.10/5.20 GHz is free of all seven collisions at zero
    // noise, so at 1 MHz noise nearly every trial survives the full
    // 31-pair/30-triple scan — the pure inner-loop throughput
    // measurement.
    arch::Architecture path(arch::Layout::grid(1, 32), "path-32");
    {
        const double pattern[3] = {5.00, 5.10, 5.20};
        std::vector<double> freqs(path.numQubits());
        for (std::size_t q = 0; q < freqs.size(); ++q)
            freqs[q] = pattern[q % 3];
        path.setAllFrequencies(freqs);
    }
    rc |= report("surviving-heavy", run(path, 0.001, trials, reps));

    // Colliding-heavy: paper noise on the bused chip with the
    // five-frequency tiling; most trials die within a few terms, the
    // scalar short-circuit's best case.
    auto bused = arch::ibm16Q(true);
    rc |= report("colliding-heavy", run(bused, 0.030, trials, reps));

    // Paper operating point: 30 MHz noise on an Algorithm-3
    // optimized unbused chip — the estimateYield hot path of the
    // experiments.
    auto optimized = arch::ibm16Q(false);
    design::FreqAllocOptions fopts;
    fopts.local_trials = bench::fastMode() ? 300 : 2000;
    design::applyOptimizedFrequencies(optimized, fopts);
    rc |= report("paper-sigma", run(optimized, 0.030, trials, reps));

    if (rc == 0)
        std::printf("\nscalar and batched kernels agree on every "
                    "trial\n");
    return rc;
}

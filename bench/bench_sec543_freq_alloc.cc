/**
 * @file
 * Experiment E10 (paper Section 5.4.3): frequency-allocation gain.
 * eff-full vs eff-5-freq at matched layout/bus configurations; the
 * paper reports ~10x average yield improvement, smaller when the
 * 5-frequency yield is already high (sym6, UCCSD).
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hh"
#include "benchmarks/suite.hh"
#include "eval/experiment.hh"
#include "eval/report.hh"

using namespace qpad;
using eval::formatFixed;
using eval::formatYield;

int
main()
{
    auto options = bench::paperOptions();
    options.run_ibm = false;
    options.run_eff_rd_bus = false;
    options.run_eff_layout_only = false;

    eval::printHeader(std::cout,
                      "Section 5.4.3: optimized frequency allocation "
                      "vs 5-frequency scheme");
    std::cout << "bench             K  five-freq   optimized   gain\n";

    std::vector<double> gains;
    for (const auto &info : benchmarks::paperSuite()) {
        auto e = eval::runBenchmark(info, options);
        // Index the eff-5-freq points by bus count.
        std::map<std::size_t, const eval::DataPoint *> five;
        for (const auto *p : e.config("eff-5-freq"))
            five[p->num_buses] = p;
        for (const auto *p : e.config("eff-full")) {
            auto it = five.find(p->num_buses);
            if (it == five.end())
                continue;
            double floor = it->second->yield_trials > 0
                               ? 1.0 / double(it->second->yield_trials)
                               : 1e-7;
            // Lower-bound the gain when the 5-frequency yield is
            // below the Monte Carlo floor.
            double gain = p->yield > 0
                              ? p->yield /
                                    std::max(it->second->yield, floor)
                              : 0.0;
            std::cout << "  " << info.name;
            for (std::size_t pad = info.name.size(); pad < 16; ++pad)
                std::cout << ' ';
            std::cout << p->num_buses << "  "
                      << formatYield(it->second->yield) << "   "
                      << formatYield(p->yield) << "   ";
            if (gain > 0)
                std::cout << formatFixed(gain, 1) << "x";
            else if (p->yield > 0)
                std::cout << "inf";
            else
                std::cout << "-";
            std::cout << "\n";
            if (gain > 0)
                gains.push_back(gain);
        }
    }
    std::cout << "\ngeomean yield gain of Algorithm 3 over the "
              << "5-frequency scheme: "
              << formatFixed(eval::geomean(gains), 1)
              << "x  (paper: ~10x average)\n";
    return 0;
}

/**
 * @file
 * Microbenchmark for the qpad::runtime execution engine.
 *
 * Default (uniform) mode: wall-clock speedup of the sharded Monte
 * Carlo yield estimator as the thread count grows, on the paper's
 * 10k-trial workload (ibm-16q with 4-qubit buses, sigma = 30 MHz),
 * with scheduler statistics (steals, max idle) read back from the
 * qpad::obs metrics registry — the same series QPAD_METRICS exports.
 * Verifies on the fly that the tallies are bit-identical
 * at every thread count — the determinism contract of
 * runtime::SeedSequence.
 *
 * --skewed: the load-imbalance workload the work-stealing scheduler
 * exists for. A synthetic sweep whose per-index cost is 1x for the
 * first 7/8 of the range and 100x for the last eighth — the shape
 * adaptive yield escalation gives eval::runBenchmark, where a few
 * data points dwarf the rest. Compares static fixed-grain chunking
 * (one chunk per runner, the classic parallel-for deal) against
 * guided sizing (grain 0) on the same 8-way runner budget, and
 * checks that both produce the reference checksum bit-for-bit. The
 * checksum line is stable across thread counts and scheduler modes,
 * so CI can diff it between a QPAD_THREADS=1 leg and a default leg.
 *
 * --assert-speedup (with --skewed): exit nonzero unless guided beats
 * fixed by >= 1.5x. Off by default: the ratio is meaningful only on
 * hardware with enough idle cores (the determinism checks always
 * run and always gate the exit code).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "common/rng.hh"
#include "eval/report.hh"
#include "obs/metrics.hh"
#include "runtime/parallel.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

namespace
{

using clock_type = std::chrono::steady_clock;

double
seconds(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0)
        .count();
}

double
timedYield(const arch::Architecture &arch,
           const yield::YieldOptions &opts, yield::YieldResult &out)
{
    const auto t0 = clock_type::now();
    out = yield::estimateYield(arch, opts);
    return seconds(t0);
}

// --------------------------------------------------------------------
// Uniform mode: the yield Monte Carlo scaling table (paper workload)
// --------------------------------------------------------------------

int
runUniform(bench::BenchJson *json)
{
    eval::printHeader(std::cout,
                      "Runtime scaling: sharded yield Monte Carlo");

    // The plain (unbused) 16-qubit grid has a nonzero yield at the
    // paper's sigma, so the cross-thread-count tally check is
    // non-vacuous.
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = bench::fastMode() ? 10000 : 100000;
    opts.sigma_ghz = 0.030;
    opts.seed = 2020;

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u, trials per estimate: %zu\n\n",
                hw, opts.trials);
    if (json) {
        json->config("mode", "uniform");
        json->config("hardware_threads", std::uint64_t(hw));
        json->config("trials", opts.trials);
        json->config("sigma_ghz", opts.sigma_ghz);
    }

    // Warm up the global pool and the caches.
    opts.exec.num_threads = 0;
    yield::YieldResult warmup;
    timedYield(arch, opts, warmup);

    opts.exec.num_threads = 1;
    yield::YieldResult reference;
    // Median-of-3 to dampen scheduler noise.
    double t1 = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        yield::YieldResult r;
        t1 = std::min(t1, timedYield(arch, opts, r));
        reference = r;
    }
    std::printf("%8s %12s %10s %12s %8s %10s\n", "threads", "seconds",
                "speedup", "successes", "steals", "max-idle");
    std::printf("%8zu %12.4f %10.2fx %12zu %8s %10s\n", std::size_t{1},
                t1, 1.0, reference.successes, "-", "-");
    if (json) {
        json->metric("seconds_t1", t1);
        json->metric("successes", reference.successes);
    }

    for (std::size_t threads : {2u, 4u, 8u}) {
        bench::RegionDelta best_delta;
        opts.exec.num_threads = threads;
        double t = 1e300;
        yield::YieldResult r;
        for (int rep = 0; rep < 3; ++rep) {
            // Keep the metrics delta of the repetition that set the
            // printed time, so the columns describe the same run.
            const obs::Snapshot before = obs::snapshot();
            const double trep = timedYield(arch, opts, r);
            if (trep < t) {
                t = trep;
                best_delta = bench::regionDelta(before);
            }
        }
        std::printf("%8zu %12.4f %10.2fx %12zu %8zu %9.1fus%s\n",
                    threads, t, t1 / t, r.successes, best_delta.steals,
                    best_delta.max_idle_seconds * 1e6,
                    r.successes == reference.successes
                        ? ""
                        : "  MISMATCH!");
        if (json) {
            const std::string suffix =
                "_t" + std::to_string(threads);
            json->metric("seconds" + suffix, t);
            json->metric("speedup" + suffix, t1 / t);
            json->metric("steals" + suffix, best_delta.steals);
        }
        if (r.successes != reference.successes)
            return 1;
    }

    std::printf("\nall thread counts produced identical tallies\n");
    return 0;
}

// --------------------------------------------------------------------
// Skewed mode: guided vs fixed grain on a 100x cost-spread sweep
// --------------------------------------------------------------------

struct SkewedWorkload
{
    std::size_t n;     ///< sweep indices
    std::size_t spin;  ///< mix() steps per unit of cost
    std::size_t runners;

    /** 1x for the cheap head, 100x for the last eighth — the cost
     * cliff adaptive escalation produces. Pure function of i. */
    std::size_t cost(std::size_t i) const
    {
        return i >= n - n / 8 ? 100 : 1;
    }

    /** Deterministic busywork for index i (a SplitMix64 spin). */
    uint64_t work(std::size_t i) const
    {
        uint64_t state = 0x6a09e667f3bcc909ull ^ (uint64_t(i) << 1);
        uint64_t acc = 0;
        const std::size_t steps = cost(i) * spin;
        for (std::size_t s = 0; s < steps; ++s)
            acc ^= Rng::splitMix64(state);
        return acc;
    }

    /**
     * Partition-invariant digest (xor and modular sum of every
     * index's busywork): bit-identical across thread counts AND
     * grain modes, because xor/sum do not care where the chunk
     * boundaries fall. A boundary-sensitive fold would differ
     * between grains by the chunk-identity contract itself — chunk
     * identity is a function of (n, grain) — so it could not serve
     * as the cross-mode determinism check.
     */
    struct Digest
    {
        uint64_t x = 0;
        uint64_t sum = 0;
        bool operator==(const Digest &o) const
        {
            return x == o.x && sum == o.sum;
        }
    };

    Digest checksum(std::size_t grain, std::size_t threads) const
    {
        runtime::Options exec{threads};
        return runtime::parallel_reduce(
            exec, n, grain, Digest{},
            [&](std::size_t begin, std::size_t end, std::size_t) {
                Digest d;
                for (std::size_t i = begin; i < end; ++i) {
                    const uint64_t h = work(i);
                    d.x ^= h;
                    d.sum += h;
                }
                return d;
            },
            [](Digest acc, const Digest &d) {
                acc.x ^= d.x;
                acc.sum += d.sum;
                return acc;
            });
    }
};

int
runSkewed(bool assert_speedup, bench::BenchJson *json)
{
    eval::printHeader(
        std::cout,
        "Runtime scaling: skewed sweep, fixed vs guided grain");

    const runtime::Options env = bench::execOptions();
    SkewedWorkload w;
    w.n = 256;
    w.spin = bench::fastMode() ? 2000 : 20000;
    // The "8-way" workload of the scheduler acceptance test; an
    // explicit QPAD_THREADS overrides (1 = the sequential leg CI
    // diffs the checksum against).
    w.runners = env.num_threads == 0 ? 8 : env.num_threads;

    const std::size_t total_cost = [&] {
        std::size_t c = 0;
        for (std::size_t i = 0; i < w.n; ++i)
            c += w.cost(i);
        return c;
    }();
    std::printf("hardware threads: %u, runners: %zu, indices: %zu, "
                "cost spread: 1x..100x (total %zux)\n\n",
                std::thread::hardware_concurrency(), w.runners, w.n,
                total_cost);
    if (json) {
        json->config("mode", "skewed");
        json->config("runners", w.runners);
        json->config("indices", w.n);
        json->config("spin", w.spin);
    }

    // Reference: sequential, one chunk (no scheduler involved).
    const SkewedWorkload::Digest reference = w.checksum(w.n, 1);

    // Static baseline: one fixed-grain chunk per runner — the deal
    // the pre-work-stealing scheduler made. The chunk that owns the
    // expensive tail costs ~93x a cheap chunk, so it pins one runner
    // while the others go idle.
    const std::size_t fixed_grain =
        (w.n + w.runners - 1) / w.runners;

    struct Mode
    {
        const char *name;
        std::size_t grain;
    };
    const Mode modes[] = {{"fixed", fixed_grain}, {"guided", 0}};

    std::printf("%8s %12s %10s %8s %10s %8s\n", "mode", "seconds",
                "speedup", "chunks", "steals", "max-idle");
    double times[2] = {0, 0};
    SkewedWorkload::Digest digests[2];
    bool ok = true;
    for (int m = 0; m < 2; ++m) {
        bench::RegionDelta best_delta;
        double best = 1e300;
        SkewedWorkload::Digest digest;
        for (int rep = 0; rep < 3; ++rep) {
            const obs::Snapshot snap = obs::snapshot();
            const auto t0 = clock_type::now();
            digest = w.checksum(modes[m].grain, w.runners);
            const double trep = seconds(t0);
            // Keep the metrics delta of the repetition that set the
            // printed time, so the columns describe the same run.
            if (trep < best) {
                best = trep;
                best_delta = bench::regionDelta(snap);
            }
        }
        times[m] = best;
        digests[m] = digest;
        const bool match = digest == reference;
        ok = ok && match;
        std::printf("%8s %12.4f %10.2fx %8zu %10zu %7.1fms%s\n",
                    modes[m].name, best, times[0] / best,
                    best_delta.chunks, best_delta.steals,
                    best_delta.max_idle_seconds * 1e3,
                    match ? "" : "  MISMATCH!");
    }

    const double improvement = times[0] / times[1];
    std::printf("\nguided vs fixed: %.2fx\n", improvement);
    if (json) {
        json->metric("fixed_seconds", times[0]);
        json->metric("guided_seconds", times[1]);
        json->metric("guided_vs_fixed", improvement);
        json->metric("checksums_match", ok);
    }
    // Stable across thread counts and grain modes (partition-
    // invariant digest); CI diffs this line between scheduler legs.
    // Deliberately printed from the *parallel guided* run — not the
    // sequential reference — so the cross-leg cmp compares actual
    // scheduler output, not two copies of the same sequential
    // computation.
    std::printf("checksum: %016llx-%016llx\n",
                static_cast<unsigned long long>(digests[1].x),
                static_cast<unsigned long long>(digests[1].sum));

    if (!ok) {
        std::fprintf(stderr, "checksum mismatch between scheduler "
                             "modes: determinism contract broken\n");
        return 1;
    }
    std::printf("fixed and guided checksums match the sequential "
                "reference\n");
    if (assert_speedup && improvement < 1.5) {
        std::fprintf(stderr,
                     "guided improvement %.2fx below the 1.5x gate "
                     "(needs >= %zu idle hardware threads to be "
                     "meaningful)\n",
                     improvement, w.runners);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool skewed = false;
    bool assert_speedup = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--skewed") == 0) {
            skewed = true;
        } else if (std::strcmp(argv[i], "--assert-speedup") == 0) {
            assert_speedup = true;
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--skewed] [--assert-speedup] "
                         "[--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    bench::BenchJson json("runtime_scaling");
    bench::BenchJson *jp = json_path.empty() ? nullptr : &json;
    const int rc =
        skewed ? runSkewed(assert_speedup, jp) : runUniform(jp);
    if (jp)
        json.writeTo(json_path);
    return rc;
}

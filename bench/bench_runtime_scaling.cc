/**
 * @file
 * Microbenchmark for the qpad::runtime execution engine: wall-clock
 * speedup of the sharded Monte Carlo yield estimator as the thread
 * count grows, on the paper's 10k-trial workload (ibm-16q with
 * 4-qubit buses, sigma = 30 MHz). Also verifies on the fly that the
 * tallies are bit-identical at every thread count — the determinism
 * contract of runtime::SeedSequence.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "eval/report.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

namespace
{

double
timedYield(const arch::Architecture &arch,
           const yield::YieldOptions &opts, yield::YieldResult &out)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    out = yield::estimateYield(arch, opts);
    auto t1 = clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    eval::printHeader(std::cout,
                      "Runtime scaling: sharded yield Monte Carlo");

    // The plain (unbused) 16-qubit grid has a nonzero yield at the
    // paper's sigma, so the cross-thread-count tally check is
    // non-vacuous.
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = bench::fastMode() ? 10000 : 100000;
    opts.sigma_ghz = 0.030;
    opts.seed = 2020;

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u, trials per estimate: %zu\n\n",
                hw, opts.trials);

    // Warm up the global pool and the caches.
    opts.exec.num_threads = 0;
    yield::YieldResult warmup;
    timedYield(arch, opts, warmup);

    opts.exec.num_threads = 1;
    yield::YieldResult reference;
    // Median-of-3 to dampen scheduler noise.
    double t1 = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        yield::YieldResult r;
        t1 = std::min(t1, timedYield(arch, opts, r));
        reference = r;
    }
    std::printf("%8s %12s %10s %12s\n", "threads", "seconds",
                "speedup", "successes");
    std::printf("%8zu %12.4f %10.2fx %12zu\n", std::size_t{1}, t1, 1.0,
                reference.successes);

    for (std::size_t threads : {2u, 4u, 8u}) {
        opts.exec.num_threads = threads;
        double t = 1e300;
        yield::YieldResult r;
        for (int rep = 0; rep < 3; ++rep)
            t = std::min(t, timedYield(arch, opts, r));
        std::printf("%8zu %12.4f %10.2fx %12zu%s\n", threads, t,
                    t1 / t, r.successes,
                    r.successes == reference.successes
                        ? ""
                        : "  MISMATCH!");
        if (r.successes != reference.successes)
            return 1;
    }

    std::printf("\nall thread counts produced identical tallies\n");
    return 0;
}

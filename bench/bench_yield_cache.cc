/**
 * @file
 * Microbenchmark of the persistent yield-estimate cache: a sweep of
 * estimateYield calls over the IBM baselines plus a designed chip,
 * run cold (empty cache) and warm (same keys again). The warm sweep
 * must be pure hash lookups — the bench asserts bit-identical
 * results, zero warm recomputation, and a >= 10x warm speedup, so CI
 * catches a silently disabled or miskeyed cache as a failure.
 *
 * `--sweep` mode instead runs one small experiment benchmark and
 * prints its CSV to stdout (cache counters go to stderr). The CI
 * two-pass job runs it twice with QPAD_CACHE_DIR set and diffs the
 * CSVs; `--expect-warm` additionally fails unless the on-disk cache
 * produced hits, proving persistence across process invocations.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define QPAD_BENCH_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define QPAD_BENCH_FORK 0
#endif

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "cache/yield_cache.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "profile/coupling.hh"

using namespace qpad;

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** The sweep working set: every baseline plus one designed chip. */
std::vector<arch::Architecture>
sweepArchitectures(const eval::ExperimentOptions &opts)
{
    std::vector<arch::Architecture> archs = arch::ibmBaselines();
    auto circuit = benchmarks::getBenchmark("sym6_145").generate();
    profile::CouplingProfile prof = profile::profileCircuit(circuit);
    design::DesignFlowOptions flow;
    flow.freq_options = opts.freq_options;
    archs.push_back(
        design::designArchitecture(prof, flow, "eff-sym6").architecture);
    return archs;
}

int
runMicrobench(bench::BenchJson *json)
{
    eval::printHeader(std::cout,
                      "Yield-estimate cache: cold vs warm sweep");

    eval::ExperimentOptions opts = bench::paperOptions();
    // Memory-only cache: the microbench must not touch (or depend
    // on) a QPAD_CACHE_DIR the user may have configured — swap it
    // out before the design flow runs, and reset again afterwards so
    // the timed sweeps start from a genuinely empty store.
    cache::configureGlobalCache({});
    const std::vector<arch::Architecture> archs =
        sweepArchitectures(opts);
    cache::configureGlobalCache({});
    // Two sigma points per architecture, as a frequency-allocation
    // style sweep would revisit them.
    const std::vector<double> sigmas = {0.030, 0.025};

    yield::YieldOptions yopts = opts.yield_options;
    using clock = std::chrono::steady_clock;

    auto sweep = [&] {
        // Fold the results so the work cannot be optimized away.
        double acc = 0.0;
        for (const arch::Architecture &arch : archs) {
            for (double sigma : sigmas) {
                yield::YieldOptions y = yopts;
                y.sigma_ghz = sigma;
                acc += cache::cachedEstimateYield(arch, y).yield;
            }
        }
        return acc;
    };

    const auto c0 = clock::now();
    const double cold_acc = sweep();
    const auto c1 = clock::now();
    const obs::Snapshot warm_before = obs::snapshot();
    const double warm_acc = sweep();
    const auto c2 = clock::now();
    const obs::Snapshot warm_delta = obs::deltaSince(warm_before);

    const double cold_s = seconds(c0, c1);
    const double warm_s = seconds(c1, c2);
    const cache::StoreStats stats = cache::globalCacheStats();
    const std::size_t keys = archs.size() * sigmas.size();

    std::printf("architectures: %zu, sigma points: %zu, trials/key: "
                "%zu\n",
                archs.size(), sigmas.size(), yopts.trials);
    std::printf("%-12s %12s %12s\n", "sweep", "seconds", "yield sum");
    std::printf("%-12s %12.4f %12.6f\n", "cold", cold_s, cold_acc);
    std::printf("%-12s %12.4f %12.6f\n", "warm", warm_s, warm_acc);
    std::printf("speedup: %.1fx, cache: %llu hits / %llu misses, "
                "%llu bytes in %llu entries\n",
                cold_s / warm_s,
                (unsigned long long)stats.hits,
                (unsigned long long)stats.misses,
                (unsigned long long)stats.bytes,
                (unsigned long long)stats.entries);

    int rc = 0;
    if (warm_acc != cold_acc) {
        std::fprintf(stderr, "FAIL: warm sweep changed the results\n");
        rc = 1;
    }
    if (stats.misses != keys || stats.hits != keys) {
        std::fprintf(stderr,
                     "FAIL: expected %zu misses + %zu hits, got "
                     "%llu + %llu\n",
                     keys, keys, (unsigned long long)stats.misses,
                     (unsigned long long)stats.hits);
        rc = 1;
    }
    if (cold_s < warm_s * 10.0) {
        std::fprintf(stderr,
                     "FAIL: warm sweep must be >= 10x faster "
                     "(cold %.4fs, warm %.4fs)\n",
                     cold_s, warm_s);
        rc = 1;
    }
    // Zero-recompute contract: a fully warm sweep is pure hash
    // lookups, so the expensive-work counters must not move at all.
    // Timing alone would let a 10x-faster-but-still-recomputing
    // regression slip through; the metric deltas cannot.
    for (const char *counter :
         {"design.flows", "yield.estimates", "eval.measurements"}) {
        const double moved = obs::valueOf(warm_delta, counter);
        if (moved != 0.0) {
            std::fprintf(stderr,
                         "FAIL: warm sweep recomputed work: %s "
                         "advanced by %.0f\n",
                         counter, moved);
            rc = 1;
        }
    }
    if (rc == 0)
        std::printf("\nwarm sweep served entirely from the cache\n");
    if (json) {
        json->config("architectures", archs.size());
        json->config("sigma_points", sigmas.size());
        json->config("trials_per_key", yopts.trials);
        json->metric("cold_seconds", cold_s);
        json->metric("warm_seconds", warm_s);
        json->metric("warm_speedup", cold_s / warm_s);
        json->metric("hits", std::uint64_t(stats.hits));
        json->metric("misses", std::uint64_t(stats.misses));
        json->metric("cache_ok", rc == 0);
    }
    return rc;
}

int
runSweepCsv(bool expect_warm, bench::BenchJson *json)
{
    // Small but complete experiment; the global cache stays in
    // whatever state the environment configured (QPAD_CACHE_DIR
    // makes it persistent — the point of the two-pass CI job).
    eval::ExperimentOptions opts = bench::paperOptions();
    opts.yield_options.trials = 500;
    opts.max_yield_trials = 5000;
    opts.freq_options.local_trials = 150;
    opts.freq_options.refine_sweeps = 1;
    opts.random_bus_samples = 2;

    const eval::BenchmarkExperiment exp = eval::runBenchmark(
        benchmarks::getBenchmark("sym6_145"), opts);
    eval::printExperimentCsv(std::cout, exp, true);

    const auto &cs = exp.cache_stats;
    std::fprintf(stderr,
                 "qpad-cache: hits=%llu misses=%llu inserts=%llu "
                 "evictions=%llu bytes=%llu entries=%llu "
                 "lock_waits=%llu lock_timeouts=%llu "
                 "compactions=%llu persistence_lost=%llu\n",
                 (unsigned long long)cs.hits,
                 (unsigned long long)cs.misses,
                 (unsigned long long)cs.inserts,
                 (unsigned long long)cs.evictions,
                 (unsigned long long)cs.bytes,
                 (unsigned long long)cs.entries,
                 (unsigned long long)cs.lock_waits,
                 (unsigned long long)cs.lock_timeouts,
                 (unsigned long long)cs.compactions,
                 (unsigned long long)cs.persistence_lost);
    int rc = 0;
    if (expect_warm && cs.hits == 0) {
        std::fprintf(stderr, "FAIL: expected a warm cache (nonzero "
                             "hit rate) on this pass\n");
        rc = 1;
    }
    if (json) {
        json->config("sweep", true);
        json->config("expect_warm", expect_warm);
        json->metric("hits", std::uint64_t(cs.hits));
        json->metric("misses", std::uint64_t(cs.misses));
        json->metric("inserts", std::uint64_t(cs.inserts));
        json->metric("evictions", std::uint64_t(cs.evictions));
        json->metric("bytes", std::uint64_t(cs.bytes));
        json->metric("entries", std::uint64_t(cs.entries));
        json->metric("cache_ok", rc == 0);
    }
    return rc;
}

/**
 * `--writers N`: N forked child processes each run the sweep
 * experiment concurrently against the SAME QPAD_CACHE_DIR (their
 * CSVs go to /dev/null — they exist to warm the shared log under
 * real inter-process contention), then the parent runs the sweep
 * itself and prints the warm CSV. The CI shared-cache job cmp-gates
 * that CSV byte-for-byte against a single-writer run: flock
 * serialization and log compaction must never change a result.
 */
int
runMultiWriter(int writers, bool expect_warm, bench::BenchJson *json)
{
#if QPAD_BENCH_FORK
    std::vector<pid_t> children;
    for (int w = 0; w < writers; ++w) {
        const pid_t pid = fork();
        if (pid < 0) {
            std::fprintf(stderr, "FAIL: fork failed\n");
            return 1;
        }
        if (pid == 0) {
            // Child: same workload, silenced stdout. The child's
            // global store opens the shared dir on first use and
            // contends on the flock append by append.
            if (!std::freopen("/dev/null", "w", stdout))
                std::_Exit(3);
            std::_Exit(runSweepCsv(false, nullptr) == 0 ? 0 : 1);
        }
        children.push_back(pid);
    }
    int rc = 0;
    for (pid_t pid : children) {
        int status = 0;
        if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "FAIL: writer child failed\n");
            rc = 1;
        }
    }
    if (rc != 0)
        return rc;
    // Parent pass: everything the children computed is on disk now,
    // so with --expect-warm this must serve from the merged log.
    return runSweepCsv(expect_warm, json);
#else
    (void)writers;
    (void)expect_warm;
    (void)json;
    std::fprintf(stderr, "--writers needs fork(); not available\n");
    return 2;
#endif
}

} // namespace

int
main(int argc, char **argv)
{
    bool sweep = false, expect_warm = false;
    int writers = 0;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep") == 0)
            sweep = true;
        else if (std::strcmp(argv[i], "--expect-warm") == 0)
            expect_warm = true;
        else if (std::strcmp(argv[i], "--writers") == 0 &&
                 i + 1 < argc)
            writers = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--sweep [--expect-warm] "
                         "[--writers N]] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if ((expect_warm || writers > 0) && !sweep) {
        std::fprintf(
            stderr,
            "--expect-warm and --writers require --sweep\n");
        return 2;
    }
    bench::BenchJson json("yield_cache");
    bench::BenchJson *jp = json_path.empty() ? nullptr : &json;
    const int rc = writers > 0
                       ? runMultiWriter(writers, expect_warm, jp)
                       : sweep ? runSweepCsv(expect_warm, jp)
                               : runMicrobench(jp);
    if (jp)
        json.writeTo(json_path);
    return rc;
}

/**
 * @file
 * Checked-in configuration for qpad-lint.
 *
 * The config is a small TOML subset — sections, strings, booleans,
 * and (possibly multi-line) string arrays — enough to express per
 * rule path policies and the RNG sanctioned-helper allowlist without
 * pulling in a dependency:
 *
 *     [lint]
 *     roots = ["src", "tests", "bench"]
 *     extensions = [".cc", ".hh"]
 *
 *     [rule.no-wallclock]
 *     include = ["src/", "tests/"]
 *     exclude = ["src/obs/"]
 *
 *     [rng]
 *     sanctioned = ["yield_sim.cc:estimateYield", ...]
 *
 *     [wallclock]
 *     sanctioned = ["cancel.cc:now"]
 *
 * A rule runs on a file iff its section exists, the file's
 * repo-relative path starts with one of `include` (empty include =
 * everywhere under the scanned roots), and starts with none of
 * `exclude`. Paths use forward slashes.
 */

#ifndef QPAD_LINT_CONFIG_HH
#define QPAD_LINT_CONFIG_HH

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace qlint
{

struct RulePolicy
{
    std::vector<std::string> include;
    std::vector<std::string> exclude;
};

struct Config
{
    std::vector<std::string> roots;
    std::vector<std::string> extensions;
    std::map<std::string, RulePolicy> rules;
    /** "file-basename:function" pairs allowed to draw from Rng. */
    std::vector<std::string> sanctioned;
    /** "file-basename:function" pairs allowed to read the clock
     * (the exec::now() deadline helper; everything else must go
     * through it or src/obs/). */
    std::vector<std::string> wallclock_sanctioned;

    bool ok = false;
    std::string error;

    /** True iff rule `rule` applies to repo-relative path `path`. */
    bool appliesTo(const std::string &rule,
                   const std::string &path) const;
};

/** Parse config text; on error `ok` is false and `error` says why. */
Config parseConfig(std::string_view text);

} // namespace qlint

#endif // QPAD_LINT_CONFIG_HH

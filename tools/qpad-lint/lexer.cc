#include "lexer.hh"

#include <cctype>

namespace qlint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

LexResult
lex(std::string_view s)
{
    LexResult r;
    const std::size_t n = s.size();
    std::size_t i = 0;
    int line = 1;
    bool code_on_line = false;

    auto push = [&](Tok kind, std::string text, int at) {
        r.tokens.push_back(Token{kind, std::move(text), at});
        code_on_line = true;
    };

    while (i < n) {
        const char c = s[i];
        if (c == '\n') {
            ++line;
            code_on_line = false;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && s[i + 1] == '/') {
            std::size_t j = i + 2;
            while (j < n && s[j] != '\n')
                ++j;
            r.comments.push_back(Comment{
                std::string(s.substr(i + 2, j - i - 2)), line, line,
                code_on_line});
            i = j;
            continue;
        }

        // Block comment (C++ block comments do not nest).
        if (c == '/' && i + 1 < n && s[i + 1] == '*') {
            const int start = line;
            const bool before = code_on_line;
            std::size_t j = i + 2;
            while (j < n && !(j + 1 < n && s[j] == '*' &&
                              s[j + 1] == '/')) {
                if (s[j] == '\n')
                    ++line;
                ++j;
            }
            std::string text(s.substr(i + 2, j - i - 2));
            if (j < n)
                j += 2; // consume the terminator
            r.comments.push_back(
                Comment{std::move(text), start, line, before});
            i = j;
            continue;
        }

        // Raw string literal, with optional encoding prefix:
        // R"delim( ... )delim". Must be checked before plain
        // identifiers, since the prefix lexes like one.
        if (identStart(c)) {
            std::size_t p = i;
            if (s[p] == 'u' && p + 1 < n && s[p + 1] == '8')
                p += 2;
            else if (s[p] == 'u' || s[p] == 'U' || s[p] == 'L')
                p += 1;
            if (p < n && s[p] == 'R' && p + 1 < n && s[p + 1] == '"') {
                std::size_t d = p + 2;
                while (d < n && s[d] != '(' && s[d] != '\n')
                    ++d;
                if (d < n && s[d] == '(') {
                    const std::string delim(s.substr(p + 2, d - p - 2));
                    const std::string close = ")" + delim + "\"";
                    const int start = line;
                    std::size_t e = s.find(close, d + 1);
                    if (e == std::string_view::npos)
                        e = n;
                    std::string body(s.substr(d + 1, e - d - 1));
                    for (char ch : body)
                        if (ch == '\n')
                            ++line;
                    push(Tok::kString, std::move(body), start);
                    i = e == n ? n : e + close.size();
                    continue;
                }
            }
        }

        // Identifier.
        if (identStart(c)) {
            std::size_t j = i + 1;
            while (j < n && identChar(s[j]))
                ++j;
            push(Tok::kIdent, std::string(s.substr(i, j - i)), line);
            i = j;
            continue;
        }

        // Number: pp-number rules, loosely — digits, letters, dots,
        // digit separators, and exponent signs. A leading dot counts
        // when followed by a digit.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
            std::size_t j = i;
            while (j < n) {
                const char d = s[j];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '.') {
                    ++j;
                    continue;
                }
                // Digit separator, only between alnums.
                if (d == '\'' && j + 1 < n &&
                    std::isalnum(static_cast<unsigned char>(s[j + 1]))) {
                    ++j;
                    continue;
                }
                // Exponent sign after e/E/p/P.
                if ((d == '+' || d == '-') && j > i &&
                    (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                     s[j - 1] == 'p' || s[j - 1] == 'P')) {
                    ++j;
                    continue;
                }
                break;
            }
            push(Tok::kNumber, std::string(s.substr(i, j - i)), line);
            i = j;
            continue;
        }

        // String / char literal with escapes. Unterminated literals
        // stop at end of line so one typo cannot swallow the file.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && s[j] != quote && s[j] != '\n') {
                if (s[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            std::string body(s.substr(i + 1, j - i - 1));
            push(quote == '"' ? Tok::kString : Tok::kChar,
                 std::move(body), line);
            i = j < n && s[j] == quote ? j + 1 : j;
            continue;
        }

        // Punctuation; "::" and "->" are combined because the rules
        // match on them constantly.
        if (c == ':' && i + 1 < n && s[i + 1] == ':') {
            push(Tok::kPunct, "::", line);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && s[i + 1] == '>') {
            push(Tok::kPunct, "->", line);
            i += 2;
            continue;
        }
        push(Tok::kPunct, std::string(1, c), line);
        ++i;
    }
    return r;
}

} // namespace qlint

#include "rules.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>

namespace qlint
{

namespace
{

bool
isP(const Token &t, std::string_view s)
{
    return t.kind == Tok::kPunct && t.text == s;
}

bool
isI(const Token &t, std::string_view s)
{
    return t.kind == Tok::kIdent && t.text == s;
}

std::string
basename(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Keywords that look like `name(` but never open a function body. */
const std::set<std::string> &
notFunctionNames()
{
    static const std::set<std::string> kw = {
        "if",      "for",     "while",    "switch",        "catch",
        "return",  "sizeof",  "alignof",  "alignas",       "decltype",
        "new",     "delete",  "throw",    "static_assert", "noexcept",
        "assert",  "requires", "typeid",  "co_return",     "co_await",
        "defined", "__attribute__"};
    return kw;
}

} // namespace

std::vector<std::string>
enclosingFunctions(const std::vector<Token> &t)
{
    std::vector<std::string> out(t.size());
    // Brace stack: true = the matching } closes a named function.
    std::vector<bool> stack;
    std::string current;

    // Candidate-signature machine, active only at non-function scope.
    enum State { kNone, kParams, kAfterParams, kInitList };
    State st = kNone;
    std::string cand;
    int depth = 0;      // paren nesting inside the current state
    int init_brace = 0; // brace-init nesting inside a member init

    // Preprocessor directives are skipped: `#define M(x) ...` would
    // otherwise read like a signature, and a `{` in a macro body
    // would corrupt the brace stack.
    bool in_pp = false;
    int pp_line = 0;

    for (std::size_t i = 0; i < t.size(); ++i) {
        out[i] = current;
        const Token &tk = t[i];

        if (in_pp) {
            if (tk.line <= pp_line) {
                if (isP(tk, "\\"))
                    pp_line = tk.line + 1; // line continuation
                continue;
            }
            in_pp = false;
        }
        if (isP(tk, "#")) {
            in_pp = true;
            pp_line = tk.line;
            continue;
        }

        if (!current.empty()) {
            // Inside a function only the brace depth matters.
            if (isP(tk, "{")) {
                stack.push_back(false);
            } else if (isP(tk, "}")) {
                if (!stack.empty()) {
                    const bool was_fn = stack.back();
                    stack.pop_back();
                    if (was_fn)
                        current.clear();
                }
            }
            continue;
        }

        switch (st) {
        case kNone:
            if (isP(tk, "{")) {
                stack.push_back(false); // namespace/class/init list
            } else if (isP(tk, "}")) {
                if (!stack.empty())
                    stack.pop_back();
            } else if (tk.kind == Tok::kIdent && i + 1 < t.size() &&
                       isP(t[i + 1], "(") &&
                       !notFunctionNames().count(tk.text)) {
                cand = tk.text;
                st = kParams;
                depth = 0;
            }
            break;

        case kParams:
            if (isP(tk, "("))
                ++depth;
            else if (isP(tk, ")") && --depth == 0)
                st = kAfterParams;
            break;

        case kAfterParams:
            // `name(` again means the earlier match was part of the
            // return type (e.g. std::function<void(int)> f() {...}).
            if (tk.kind == Tok::kIdent && i + 1 < t.size() &&
                isP(t[i + 1], "(") && depth == 0 &&
                !notFunctionNames().count(tk.text)) {
                cand = tk.text;
                st = kParams;
                break;
            }
            if (isP(tk, "(")) {
                ++depth; // noexcept(...), attributes
                break;
            }
            if (isP(tk, ")")) {
                if (depth > 0)
                    --depth;
                break;
            }
            if (depth > 0)
                break;
            if (isP(tk, "{")) {
                stack.push_back(true);
                current = cand;
                st = kNone;
                break;
            }
            if (isP(tk, ":")) {
                st = kInitList; // constructor member-init list
                break;
            }
            if (isP(tk, ";") || isP(tk, "=") || isP(tk, ",") ||
                isP(tk, "}")) {
                if (isP(tk, "}") && !stack.empty())
                    stack.pop_back();
                st = kNone;
                cand.clear();
            }
            // const / noexcept / override / -> trailing types: keep.
            break;

        case kInitList:
            if (isP(tk, "(")) {
                ++depth;
                break;
            }
            if (isP(tk, ")")) {
                if (depth > 0)
                    --depth;
                break;
            }
            if (depth > 0)
                break;
            if (init_brace > 0) {
                if (isP(tk, "{"))
                    ++init_brace;
                else if (isP(tk, "}"))
                    --init_brace;
                break;
            }
            if (isP(tk, "{")) {
                // `member_{0}` brace-init vs the body: a brace right
                // after an identifier (or template `>`) initializes.
                const bool braces_member =
                    i > 0 && (t[i - 1].kind == Tok::kIdent ||
                              isP(t[i - 1], ">"));
                if (braces_member) {
                    init_brace = 1;
                } else {
                    stack.push_back(true);
                    current = cand;
                    st = kNone;
                }
                break;
            }
            if (isP(tk, ";")) {
                st = kNone;
                cand.clear();
            }
            break;
        }
    }
    return out;
}

bool
validMetricName(std::string_view name)
{
    std::size_t start = 0;
    int segments = 0;
    while (start <= name.size()) {
        std::size_t dot = name.find('.', start);
        const std::string_view seg = name.substr(
            start,
            (dot == std::string_view::npos ? name.size() : dot) - start);
        if (seg.empty() || !(seg[0] >= 'a' && seg[0] <= 'z'))
            return false;
        for (char c : seg)
            if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_'))
                return false;
        ++segments;
        if (dot == std::string_view::npos)
            break;
        start = dot + 1;
    }
    return segments >= 2;
}

namespace
{

struct ParsedSuppression
{
    std::string rule;
    std::string justification;
    int line = 0;       // where the allow() comment sits
    int cover_from = 0; // first line it applies to
    int cover_to = 0;   // last line it applies to
    bool justified = false;
    bool used = false;
};

/** Parse `qpad-lint: allow(<rule>) "justification"` out of comments. */
std::vector<ParsedSuppression>
parseSuppressions(const std::vector<Comment> &comments,
                  const std::vector<Token> &toks)
{
    // A comment standing alone on its line covers the whole next
    // *statement* — up to the first ; { or } token — so a wrapped
    // multi-line call needs no comment surgery mid-statement.
    auto statementEnd = [&](int after_line) {
        std::size_t i = 0;
        while (i < toks.size() && toks[i].line <= after_line)
            ++i;
        if (i >= toks.size())
            return after_line + 1;
        for (; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind == Tok::kPunct &&
                (t.text == ";" || t.text == "{" || t.text == "}"))
                return t.line;
        }
        return toks.back().line;
    };

    std::vector<ParsedSuppression> out;
    for (std::size_t ci = 0; ci < comments.size(); ++ci) {
        const Comment &c = comments[ci];
        const std::size_t tag = c.text.find("qpad-lint:");
        if (tag == std::string::npos)
            continue;
        // A justification may wrap onto following comment lines;
        // absorb directly-adjacent continuation comments that do not
        // start their own suppression.
        std::string s = c.text;
        int end_line = c.end_line;
        while (ci + 1 < comments.size() &&
               comments[ci + 1].line == end_line + 1 &&
               !comments[ci + 1].code_before &&
               comments[ci + 1].text.find("qpad-lint:") ==
                   std::string::npos) {
            ++ci;
            s += " " + comments[ci].text;
            end_line = comments[ci].end_line;
        }
        ParsedSuppression p;
        p.line = c.line;
        p.cover_from = c.line;
        p.cover_to = c.code_before ? end_line
                                   : statementEnd(end_line);
        const std::size_t open = s.find("allow(", tag);
        const std::size_t close =
            open == std::string::npos ? std::string::npos
                                      : s.find(')', open);
        if (close == std::string::npos) {
            out.push_back(std::move(p)); // malformed: unjustified
            continue;
        }
        std::size_t rb = open + 6, re = close;
        while (rb < re && std::isspace(
                              static_cast<unsigned char>(s[rb])))
            ++rb;
        while (re > rb && std::isspace(
                              static_cast<unsigned char>(s[re - 1])))
            --re;
        p.rule = s.substr(rb, re - rb);
        const std::size_t q1 = s.find('"', close);
        const std::size_t q2 =
            q1 == std::string::npos ? std::string::npos
                                    : s.find('"', q1 + 1);
        if (q2 != std::string::npos && q2 > q1 + 1) {
            // Collapse whitespace runs: wrapped justifications join
            // across comment lines with comment-leader padding.
            std::string just;
            bool in_space = false;
            for (std::size_t i = q1 + 1; i < q2; ++i) {
                const char ch = s[i];
                if (std::isspace(static_cast<unsigned char>(ch))) {
                    in_space = true;
                    continue;
                }
                if (in_space && !just.empty())
                    just += ' ';
                in_space = false;
                just += ch;
            }
            p.justification = std::move(just);
            p.justified = true;
        }
        out.push_back(std::move(p));
    }
    return out;
}

class RuleRunner
{
  public:
    RuleRunner(const std::string &relpath, const LexResult &lx,
               const Config &cfg)
        : path_(relpath), toks_(lx.tokens), cfg_(cfg)
    {
    }

    std::vector<Finding> run();

  private:
    const std::string &path_;
    const std::vector<Token> &toks_;
    const Config &cfg_;
    std::vector<Finding> findings_;

    bool on(const char *rule) const
    {
        return cfg_.appliesTo(rule, path_);
    }

    void add(const char *rule, int line, std::string msg)
    {
        findings_.push_back(
            Finding{path_, line, rule, std::move(msg), false, ""});
    }

    const Token *at(std::size_t i) const
    {
        return i < toks_.size() ? &toks_[i] : nullptr;
    }
    const Token *prev(std::size_t i) const
    {
        return i == 0 ? nullptr : &toks_[i - 1];
    }

    void ruleNoRand();
    void ruleNoWallclock();
    void ruleNoUninit();
    void ruleRngDrawSite();
    void ruleUnorderedIter();
    void ruleAtomicOrder();
    void ruleMetricName();
    void ruleRawLog();
    void ruleRawIo();
};

void
RuleRunner::ruleNoRand()
{
    static const std::set<std::string> calls = {"rand", "srand",
                                               "drand48", "rand_r"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind != Tok::kIdent)
            continue;
        if (tk.text == "random_device") {
            add("no-rand", tk.line,
                "std::random_device is ambient entropy; every qpad "
                "stream must come from an explicitly seeded Rng");
            continue;
        }
        if (!calls.count(tk.text))
            continue;
        const Token *nx = at(i + 1);
        const Token *pv = prev(i);
        const bool member = pv && (isP(*pv, ".") || isP(*pv, "->"));
        if (!member && ((nx && isP(*nx, "(")) ||
                        (pv && isP(*pv, "::"))))
            add("no-rand", tk.line,
                "'" + tk.text +
                    "' is ambient entropy; seed an explicit Rng");
    }
}

void
RuleRunner::ruleNoWallclock()
{
    static const std::set<std::string> calls = {
        "time",   "clock",    "gettimeofday", "clock_gettime",
        "localtime", "gmtime", "mktime",      "ctime",
        "asctime", "ftime"};
    // Sanctioned clock-reading helpers ([wallclock] in the config,
    // "file-basename:function" like the RNG allowlist): exec::now()
    // is the one deliberate steady-clock read that deadlines are
    // defined against. Reads elsewhere still fire — callers must go
    // through the helper, which is the whole point of the rule.
    const std::vector<std::string> funcs = enclosingFunctions(toks_);
    const std::string base = basename(path_);
    auto sanctioned = [&](std::size_t i) {
        const std::string key = base + ":" + funcs[i];
        return std::find(cfg_.wallclock_sanctioned.begin(),
                         cfg_.wallclock_sanctioned.end(),
                         key) != cfg_.wallclock_sanctioned.end();
    };
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind != Tok::kIdent)
            continue;
        const Token *nx = at(i + 1);
        const Token *pv = prev(i);
        // steady_clock::now(), system_clock::now(), or an alias
        // literally named `clock`.
        const bool clock_type =
            tk.text == "clock" ||
            (tk.text.size() > 6 &&
             tk.text.compare(tk.text.size() - 6, 6, "_clock") == 0);
        if (clock_type && nx && isP(*nx, "::") &&
            at(i + 2) && isI(*at(i + 2), "now")) {
            if (sanctioned(i))
                continue;
            add("no-wallclock", tk.line,
                "'" + tk.text +
                    "::now()' outside src/obs/ and bench/: wall-clock "
                    "time must never feed computation");
            continue;
        }
        const bool member = pv && (isP(*pv, ".") || isP(*pv, "->"));
        if (calls.count(tk.text) && nx && isP(*nx, "(") && !member &&
            !sanctioned(i))
            add("no-wallclock", tk.line,
                "'" + tk.text +
                    "()' outside src/obs/ and bench/: wall-clock time "
                    "must never feed computation");
    }
}

void
RuleRunner::ruleNoUninit()
{
    static const std::set<std::string> allocs = {"malloc", "realloc",
                                                 "alloca", "calloc"};
    static const std::set<std::string> arith = {
        "char",    "short",   "int",      "long",    "float",
        "double",  "int8_t",  "int16_t",  "int32_t", "int64_t",
        "uint8_t", "uint16_t", "uint32_t", "uint64_t", "size_t",
        "ptrdiff_t", "unsigned", "signed"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind != Tok::kIdent)
            continue;
        const Token *nx = at(i + 1);
        const Token *pv = prev(i);
        const bool member = pv && (isP(*pv, ".") || isP(*pv, "->"));
        if (allocs.count(tk.text) && nx && isP(*nx, "(") && !member) {
            add("no-uninit", tk.line,
                "'" + tk.text +
                    "()' in a compute path: raw allocations read "
                    "uninitialized bytes too easily; use an owning "
                    "container");
            continue;
        }
        if (tk.text != "new")
            continue;
        // `new double[n]` — value-initialization is absent, so the
        // array is read-before-write bait. Scan a short type
        // spelling: idents and `::` only, then `[`.
        bool saw_arith = false;
        std::size_t j = i + 1;
        for (; j < toks_.size() && j < i + 7; ++j) {
            const Token &ty = toks_[j];
            if (ty.kind == Tok::kIdent) {
                if (arith.count(ty.text))
                    saw_arith = true;
                else if (ty.text != "std" && ty.text != "const")
                    break;
                continue;
            }
            if (isP(ty, "::"))
                continue;
            break;
        }
        if (saw_arith && at(j) && isP(*at(j), "["))
            add("no-uninit", tk.line,
                "raw 'new T[n]' of arithmetic type is never "
                "value-initialized; use std::vector");
    }
}

void
RuleRunner::ruleRngDrawSite()
{
    static const std::set<std::string> draws = {
        "next",  "uniform", "gaussian", "below",
        "range", "chance",  "split"};
    const std::vector<std::string> funcs = enclosingFunctions(toks_);
    const std::string base = basename(path_);
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind != Tok::kIdent || !draws.count(tk.text))
            continue;
        const Token *pv = prev(i);
        const Token *nx = at(i + 1);
        if (!pv || !(isP(*pv, ".") || isP(*pv, "->")) || !nx ||
            !isP(*nx, "("))
            continue;
        const std::string &fn = funcs[i];
        const std::string key = base + ":" + fn;
        if (std::find(cfg_.sanctioned.begin(), cfg_.sanctioned.end(),
                      key) != cfg_.sanctioned.end())
            continue;
        add("rng-draw-site", tk.line,
            "Rng draw '." + tk.text + "()' in " +
                (fn.empty() ? std::string("file scope")
                            : "'" + fn + "'") +
                ", which is not a sanctioned helper: a new draw site "
                "changes draw consumption — bump RngScheme and add "
                "the helper to [rng] sanctioned, or suppress with a "
                "justification");
    }
}

void
RuleRunner::ruleUnorderedIter()
{
    // Pass 1: names declared with an unordered container type.
    std::set<std::string> tracked;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (!isI(tk, "unordered_map") && !isI(tk, "unordered_set"))
            continue;
        std::size_t j = i + 1;
        if (!at(j) || !isP(*at(j), "<"))
            continue;
        int angle = 0;
        for (; j < toks_.size(); ++j) {
            if (isP(toks_[j], "<"))
                ++angle;
            else if (isP(toks_[j], ">") && --angle == 0)
                break;
        }
        ++j;
        while (at(j) && (isP(*at(j), "&") || isP(*at(j), "*") ||
                         isI(*at(j), "const")))
            ++j;
        if (at(j) && at(j)->kind == Tok::kIdent)
            tracked.insert(at(j)->text);
    }
    if (tracked.empty())
        return;

    // Pass 2: range-for over a tracked name, or explicit .begin().
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind == Tok::kIdent && tracked.count(tk.text) &&
            at(i + 1) && at(i + 2) && at(i + 3) &&
            (isP(*at(i + 1), ".") || isP(*at(i + 1), "->")) &&
            (isI(*at(i + 2), "begin") || isI(*at(i + 2), "cbegin")) &&
            isP(*at(i + 3), "(")) {
            add("unordered-iter", tk.line,
                "iterating unordered container '" + tk.text +
                    "' in an order-sensitive path: bucket order is "
                    "implementation-defined and must not reach "
                    "output, fingerprints, or decisions");
        }
        if (!isI(tk, "for") || !at(i + 1) || !isP(*at(i + 1), "("))
            continue;
        int pd = 0;
        std::size_t colon = 0;
        bool plain_for = false;
        std::size_t j = i + 1;
        for (; j < toks_.size(); ++j) {
            if (isP(toks_[j], "("))
                ++pd;
            else if (isP(toks_[j], ")") && --pd == 0)
                break;
            else if (pd == 1 && isP(toks_[j], ";"))
                plain_for = true;
            else if (pd == 1 && isP(toks_[j], ":") && colon == 0)
                colon = j;
        }
        if (plain_for || colon == 0)
            continue;
        for (std::size_t k = colon + 1; k < j; ++k) {
            if (toks_[k].kind == Tok::kIdent &&
                tracked.count(toks_[k].text)) {
                add("unordered-iter", toks_[i].line,
                    "range-for over unordered container '" +
                        toks_[k].text +
                        "' in an order-sensitive path: bucket order "
                        "is implementation-defined and must not "
                        "reach output, fingerprints, or decisions");
                break;
            }
        }
    }
}

void
RuleRunner::ruleAtomicOrder()
{
    static const std::set<std::string> ops = {
        "load",      "store",     "exchange",
        "fetch_add", "fetch_sub", "fetch_and",
        "fetch_or",  "fetch_xor", "compare_exchange_weak",
        "compare_exchange_strong"};
    const bool implicit_on = on("atomic-implicit-order");
    const bool relaxed_on = on("atomic-relaxed");
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind != Tok::kIdent)
            continue;
        if (relaxed_on &&
            (tk.text == "memory_order_relaxed" ||
             (tk.text == "memory_order" && at(i + 1) &&
              isP(*at(i + 1), "::") && at(i + 2) &&
              isI(*at(i + 2), "relaxed")))) {
            add("atomic-relaxed", tk.line,
                "memory_order_relaxed outside src/obs/ and logging: "
                "relaxed is right for stats and wrong for "
                "synchronization — justify per site");
        }
        if (!implicit_on || !ops.count(tk.text))
            continue;
        const Token *pv = prev(i);
        const Token *nx = at(i + 1);
        if (!pv || !(isP(*pv, ".") || isP(*pv, "->")) || !nx ||
            !isP(*nx, "("))
            continue;
        int pd = 0;
        bool has_order = false;
        for (std::size_t j = i + 1; j < toks_.size(); ++j) {
            if (isP(toks_[j], "("))
                ++pd;
            else if (isP(toks_[j], ")") && --pd == 0)
                break;
            else if (toks_[j].kind == Tok::kIdent &&
                     toks_[j].text.rfind("memory_order", 0) == 0)
                has_order = true;
        }
        if (!has_order)
            add("atomic-implicit-order", tk.line,
                "atomic '." + tk.text +
                    "()' without an explicit memory_order: implicit "
                    "seq_cst is reserved for the documented "
                    "chunk-deque zone — spell the order");
    }
}

void
RuleRunner::ruleMetricName()
{
    static const std::set<std::string> regs = {"counter", "gauge",
                                               "histogram"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind != Tok::kIdent)
            continue;
        bool is_site = false;
        std::string what;
        if (tk.text == "QPAD_SPAN" && at(i + 1) &&
            isP(*at(i + 1), "(")) {
            is_site = true;
            what = "QPAD_SPAN";
        } else if (regs.count(tk.text) && at(i + 1) &&
                   isP(*at(i + 1), "(") && i >= 2 &&
                   isP(toks_[i - 1], "::") &&
                   isI(toks_[i - 2], "obs")) {
            is_site = true;
            what = "obs::" + tk.text;
        }
        if (!is_site)
            continue;
        const Token *name = at(i + 2);
        if (!name || name->kind != Tok::kString) {
            add("metric-name", tk.line,
                what + " name must be a string literal so the "
                       "exported series set is statically known");
        } else if (!validMetricName(name->text)) {
            add("metric-name", tk.line,
                what + " name '" + name->text +
                    "' does not match the family.name grammar "
                    "([a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*)+)");
        }
    }
}

void
RuleRunner::ruleRawLog()
{
    static const std::set<std::string> printfs = {"fprintf",
                                                  "vfprintf", "fputs",
                                                  "fputc", "fwrite"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind != Tok::kIdent)
            continue;
        // Any mention of std::cerr counts: passing the stream into a
        // writer is still a raw stderr write.
        if (tk.text == "cerr") {
            add("rawlog", tk.line,
                "raw std::cerr write: route diagnostics through "
                "obs::log (structured, leveled, request-id tagged) "
                "or justify the raw site");
            continue;
        }
        if (!printfs.count(tk.text))
            continue;
        const Token *nx = at(i + 1);
        const Token *pv = prev(i);
        const bool member = pv && (isP(*pv, ".") || isP(*pv, "->"));
        if (member || !nx || !isP(*nx, "("))
            continue;
        int pd = 0;
        bool to_stderr = false;
        for (std::size_t j = i + 1; j < toks_.size(); ++j) {
            if (isP(toks_[j], "("))
                ++pd;
            else if (isP(toks_[j], ")") && --pd == 0)
                break;
            else if (isI(toks_[j], "stderr"))
                to_stderr = true;
        }
        if (to_stderr)
            add("rawlog", tk.line,
                "'" + tk.text +
                    "(stderr, ...)': route diagnostics through "
                    "obs::log (structured, leveled, request-id "
                    "tagged) or justify the raw site");
    }
}

void
RuleRunner::ruleRawIo()
{
    // File I/O in the persistent cache must go through the
    // fault::fio shims so every site is a named failpoint — a raw
    // call is invisible to fault injection and skips the torn-write
    // and crash-kill semantics the torture tests rely on. The set
    // covers stdio, the POSIX durability/locking calls, and the
    // filesystem mutations compaction performs.
    static const std::set<std::string> calls = {
        "fopen",     "freopen", "fread",   "fwrite", "fflush",
        "fclose",    "fsync",   "fdatasync", "ftruncate", "flock",
        "rename",    "remove",  "unlink",  "truncate", "resize_file"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
        const Token &tk = toks_[i];
        if (tk.kind != Tok::kIdent || !calls.count(tk.text))
            continue;
        const Token *nx = at(i + 1);
        const Token *pv = prev(i);
        const bool member = pv && (isP(*pv, ".") || isP(*pv, "->"));
        if (member || !nx || !isP(*nx, "("))
            continue;
        add("raw-io", tk.line,
            "raw '" + tk.text +
                "()' in the persistent cache: use the fault::fio "
                "shims (fault/fio.hh) so the site is a named "
                "failpoint, or justify the raw call");
    }
}

std::vector<Finding>
RuleRunner::run()
{
    if (on("no-rand"))
        ruleNoRand();
    if (on("no-wallclock"))
        ruleNoWallclock();
    if (on("no-uninit"))
        ruleNoUninit();
    if (on("rng-draw-site"))
        ruleRngDrawSite();
    if (on("unordered-iter"))
        ruleUnorderedIter();
    if (on("atomic-implicit-order") || on("atomic-relaxed"))
        ruleAtomicOrder();
    if (on("metric-name"))
        ruleMetricName();
    if (on("rawlog"))
        ruleRawLog();
    if (on("raw-io"))
        ruleRawIo();
    return std::move(findings_);
}

} // namespace

FileReport
analyzeFile(const std::string &relpath, std::string_view content,
            const Config &cfg)
{
    FileReport report;
    const LexResult lx = lex(content);
    std::vector<ParsedSuppression> supps =
        parseSuppressions(lx.comments, lx.tokens);

    RuleRunner runner(relpath, lx, cfg);
    report.findings = runner.run();

    for (Finding &f : report.findings) {
        for (ParsedSuppression &s : supps) {
            if (s.justified && s.rule == f.rule &&
                f.line >= s.cover_from && f.line <= s.cover_to) {
                f.suppressed = true;
                f.justification = s.justification;
                s.used = true;
                break;
            }
        }
    }

    for (const ParsedSuppression &s : supps) {
        if (!s.justified) {
            report.findings.push_back(Finding{
                relpath, s.line, "suppression-justification",
                "suppression" +
                    (s.rule.empty() ? std::string()
                                    : " for '" + s.rule + "'") +
                    " carries no quoted justification — say why the "
                    "violation is sound",
                false, ""});
        } else if (!s.used) {
            report.findings.push_back(Finding{
                relpath, s.line, "suppression-unused",
                "suppression for '" + s.rule +
                    "' matched no finding on its line — stale or "
                    "misplaced; remove it",
                false, ""});
        }
        report.suppressions.push_back(SuppressionRecord{
            relpath, s.line, s.rule, s.justification});
    }

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return report;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const std::vector<Finding> &findings, std::size_t files,
           std::size_t suppression_count)
{
    std::size_t unsuppressed = 0;
    for (const Finding &f : findings)
        if (!f.suppressed)
            ++unsuppressed;

    std::string out = "{\n  \"findings\": [";
    bool first = true;
    for (const Finding &f : findings) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"file\":\"" + jsonEscape(f.file) +
               "\",\"line\":" + std::to_string(f.line) +
               ",\"rule\":\"" + jsonEscape(f.rule) +
               "\",\"message\":\"" + jsonEscape(f.message) +
               "\",\"suppressed\":" +
               (f.suppressed ? "true" : "false");
        if (f.suppressed)
            out += ",\"justification\":\"" +
                   jsonEscape(f.justification) + "\"";
        out += "}";
    }
    out += "\n  ],\n  \"summary\": {\"files\":" +
           std::to_string(files) +
           ",\"findings\":" + std::to_string(findings.size()) +
           ",\"unsuppressed\":" + std::to_string(unsuppressed) +
           ",\"suppressions\":" + std::to_string(suppression_count) +
           "}\n}\n";
    return out;
}

} // namespace qlint

/**
 * @file
 * qpad-lint driver: walk the configured roots, analyze every source
 * file, and report.
 *
 *   qpad-lint --config tools/qpad-lint/qpad_lint.toml [--repo DIR]
 *             [--json] [--suppressions] [--all]
 *
 * Exit codes: 0 = clean (all findings suppressed with justification),
 * 1 = unsuppressed findings, 2 = usage / config / IO error.
 *
 * `--suppressions` prints the suppression inventory (file, rule,
 * justification — deliberately without line numbers, so unrelated
 * edits do not churn it); CI diffs it against the checked-in
 * baseline so a new suppression is a reviewed event, not a drive-by.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "config.hh"
#include "rules.hh"

namespace fs = std::filesystem;

namespace
{

bool
hasExtension(const fs::path &p,
             const std::vector<std::string> &exts)
{
    const std::string e = p.extension().string();
    return std::find(exts.begin(), exts.end(), e) != exts.end();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_path;
    std::string repo = ".";
    bool json = false, inventory = false, show_all = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--config" && i + 1 < argc)
            config_path = argv[++i];
        else if (arg == "--repo" && i + 1 < argc)
            repo = argv[++i];
        else if (arg == "--json")
            json = true;
        else if (arg == "--suppressions")
            inventory = true;
        else if (arg == "--all")
            show_all = true;
        else {
            std::cerr << "qpad-lint: unknown argument '" << arg
                      << "'\nusage: qpad-lint --config FILE "
                         "[--repo DIR] [--json] [--suppressions] "
                         "[--all]\n";
            return 2;
        }
    }
    if (config_path.empty()) {
        std::cerr << "qpad-lint: --config is required\n";
        return 2;
    }

    std::ifstream cf(config_path);
    if (!cf) {
        std::cerr << "qpad-lint: cannot open config '" << config_path
                  << "'\n";
        return 2;
    }
    std::stringstream cbuf;
    cbuf << cf.rdbuf();
    const qlint::Config cfg = qlint::parseConfig(cbuf.str());
    if (!cfg.ok) {
        std::cerr << "qpad-lint: " << cfg.error << "\n";
        return 2;
    }

    // Collect files, sorted, so output order is deterministic no
    // matter what the directory iterator returns.
    std::vector<std::string> files;
    for (const std::string &root : cfg.roots) {
        const fs::path dir = fs::path(repo) / root;
        if (!fs::exists(dir)) {
            std::cerr << "qpad-lint: root '" << dir.string()
                      << "' does not exist\n";
            return 2;
        }
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            if (!hasExtension(entry.path(), cfg.extensions))
                continue;
            files.push_back(
                fs::relative(entry.path(), repo).generic_string());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<qlint::Finding> findings;
    std::vector<qlint::SuppressionRecord> suppressions;
    for (const std::string &rel : files) {
        std::ifstream in(fs::path(repo) / rel, std::ios::binary);
        if (!in) {
            std::cerr << "qpad-lint: cannot read '" << rel << "'\n";
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        qlint::FileReport rep =
            qlint::analyzeFile(rel, buf.str(), cfg);
        findings.insert(findings.end(), rep.findings.begin(),
                        rep.findings.end());
        suppressions.insert(suppressions.end(),
                            rep.suppressions.begin(),
                            rep.suppressions.end());
    }

    std::size_t unsuppressed = 0;
    for (const qlint::Finding &f : findings)
        if (!f.suppressed)
            ++unsuppressed;

    if (inventory) {
        std::vector<std::string> lines;
        for (const qlint::SuppressionRecord &s : suppressions)
            lines.push_back(s.file + "\t" + s.rule + "\t\"" +
                            s.justification + "\"");
        std::sort(lines.begin(), lines.end());
        for (const std::string &l : lines)
            std::cout << l << "\n";
        return unsuppressed > 0 ? 1 : 0;
    }

    if (json) {
        std::cout << qlint::renderJson(findings, files.size(),
                                       suppressions.size());
        return unsuppressed > 0 ? 1 : 0;
    }

    for (const qlint::Finding &f : findings) {
        if (f.suppressed && !show_all)
            continue;
        std::cout << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message;
        if (f.suppressed)
            std::cout << " (suppressed: \"" << f.justification
                      << "\")";
        std::cout << "\n";
    }
    std::cout << "qpad-lint: " << files.size() << " files, "
              << findings.size() << " findings ("
              << findings.size() - unsuppressed << " suppressed, "
              << unsuppressed << " unsuppressed)\n";
    return unsuppressed > 0 ? 1 : 0;
}

/**
 * @file
 * C++ token stream for qpad-lint.
 *
 * The rule engine must never fire on text inside comments, string or
 * character literals, or raw strings — `// never call std::rand()`
 * is documentation, not a violation. Regex-over-text scanners get
 * exactly this wrong, so qpad-lint lexes each translation unit into
 * a real token stream first: identifiers, numbers, string/char
 * literals (with escapes and raw-string delimiters handled), and
 * punctuation, each tagged with its source line. Comments are
 * collected on a side channel because they carry the inline
 * suppression syntax (`// qpad-lint: allow(<rule>) "justification"`).
 *
 * This is a lexer, not a parser: no preprocessing, no template
 * disambiguation. The rules are written against token *patterns*
 * (e.g. ident `.load` `(` ... `)` without a `memory_order` ident),
 * which is exactly the precision the repo's invariants need.
 */

#ifndef QPAD_LINT_LEXER_HH
#define QPAD_LINT_LEXER_HH

#include <string>
#include <string_view>
#include <vector>

namespace qlint
{

enum class Tok
{
    kIdent,
    kNumber,
    kString, // text = contents between the quotes, escapes unprocessed
    kChar,   // text = contents between the quotes
    kPunct,  // single char, except the combined "::" and "->" tokens
};

struct Token
{
    Tok kind;
    std::string text;
    int line; // 1-based line of the token's first character
};

/** A comment, kept separate from the token stream. */
struct Comment
{
    std::string text; // without the // or /* */ markers
    int line;         // line the comment starts on
    int end_line;     // line the comment ends on (== line for //)
    bool code_before; // a token started earlier on the same line
};

struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/** Lex `src`. Never fails: malformed trailing literals are kept as-is. */
LexResult lex(std::string_view src);

} // namespace qlint

#endif // QPAD_LINT_LEXER_HH

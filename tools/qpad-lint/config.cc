#include "config.hh"

#include <cctype>

namespace qlint
{

namespace
{

std::string
trim(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

/** Strip a # comment that is not inside a quoted string. */
std::string
stripComment(std::string_view line)
{
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"' && (i == 0 || line[i - 1] != '\\'))
            in_string = !in_string;
        else if (c == '#' && !in_string)
            return std::string(line.substr(0, i));
    }
    return std::string(line);
}

/** Parse the quoted strings out of `text` (one value or an array). */
bool
parseStrings(std::string_view text, std::vector<std::string> &out)
{
    bool saw_any = false;
    std::size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        if (c == '"') {
            std::size_t j = i + 1;
            std::string v;
            while (j < text.size() && text[j] != '"') {
                if (text[j] == '\\' && j + 1 < text.size())
                    ++j;
                v += text[j];
                ++j;
            }
            if (j >= text.size())
                return false; // unterminated
            out.push_back(std::move(v));
            saw_any = true;
            i = j + 1;
            continue;
        }
        if (c == '[' || c == ']' || c == ',' ||
            std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        return false; // bare word — not part of the subset
    }
    return saw_any;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

bool
Config::appliesTo(const std::string &rule, const std::string &path) const
{
    auto it = rules.find(rule);
    if (it == rules.end())
        return false;
    const RulePolicy &p = it->second;
    bool included = p.include.empty();
    for (const std::string &pre : p.include)
        included = included || startsWith(path, pre);
    if (!included)
        return false;
    for (const std::string &pre : p.exclude)
        if (startsWith(path, pre))
            return false;
    return true;
}

Config
parseConfig(std::string_view text)
{
    Config cfg;
    std::string section;
    std::string pending_key;  // set while an array spans lines
    std::string pending_value;
    int line_no = 0;

    auto fail = [&](const std::string &why) {
        cfg.ok = false;
        cfg.error =
            "config line " + std::to_string(line_no) + ": " + why;
        return cfg;
    };

    auto commit = [&](const std::string &key,
                      const std::string &value) -> bool {
        std::vector<std::string> values;
        if (!parseStrings(value, values))
            return false;
        if (section == "lint" && key == "roots")
            cfg.roots = values;
        else if (section == "lint" && key == "extensions")
            cfg.extensions = values;
        else if (section == "rng" && key == "sanctioned")
            cfg.sanctioned = values;
        else if (section == "wallclock" && key == "sanctioned")
            cfg.wallclock_sanctioned = values;
        else if (startsWith(section, "rule.")) {
            RulePolicy &p = cfg.rules[section.substr(5)];
            if (key == "include")
                p.include = values;
            else if (key == "exclude")
                p.exclude = values;
            else
                return false;
        } else {
            return false; // unknown section/key: fail loudly
        }
        return true;
    };

    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string_view raw = text.substr(
            pos, nl == std::string_view::npos ? text.size() - pos
                                              : nl - pos);
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
        ++line_no;
        const std::string line = trim(stripComment(raw));

        if (!pending_key.empty()) {
            pending_value += " " + line;
            if (line.find(']') == std::string::npos)
                continue;
            if (!commit(pending_key, pending_value))
                return fail("bad value for '" + pending_key + "'");
            pending_key.clear();
            pending_value.clear();
            continue;
        }
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                return fail("malformed section header");
            section = trim(line.substr(1, line.size() - 2));
            if (section.empty())
                return fail("empty section name");
            // Register the rule even if the section body is empty, so
            // an include-everything policy is just "[rule.x]".
            if (startsWith(section, "rule."))
                cfg.rules[section.substr(5)];
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail("expected 'key = value'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            return fail("empty key");
        // A multi-line array: opening [ without the closing ].
        if (value.find('[') != std::string::npos &&
            value.find(']') == std::string::npos) {
            pending_key = key;
            pending_value = value;
            continue;
        }
        if (!commit(key, value))
            return fail("bad value for '" + key + "'");
    }
    if (!pending_key.empty())
        return fail("unterminated array for '" + pending_key + "'");
    if (cfg.roots.empty())
        return fail("[lint] roots is required");
    if (cfg.extensions.empty())
        return fail("[lint] extensions is required");
    cfg.ok = true;
    return cfg;
}

} // namespace qlint

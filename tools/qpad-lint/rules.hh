/**
 * @file
 * The qpad-lint rule engine.
 *
 * Rules enforce the repo's determinism and concurrency invariants —
 * the ones every PR description restates and no compiler checks:
 *
 *   no-rand               ambient entropy (std::rand, srand,
 *                         random_device, drand48, rand_r)
 *   no-wallclock          wall-clock reads (time(), clock::now(),
 *                         gettimeofday, ...) outside the
 *                         observability layer and benches
 *   no-uninit             uninitialized-read idioms in compute paths
 *                         (malloc/realloc/alloca, raw new T[n] of
 *                         arithmetic type)
 *   rng-draw-site         direct Rng draw calls in draw-order
 *                         versioned paths (src/yield/, freq_alloc,
 *                         gauss_block) outside sanctioned helpers —
 *                         a new draw site is a draw-consumption
 *                         change and must bump RngScheme or justify
 *                         itself
 *   unordered-iter        range-for / .begin() iteration over
 *                         std::unordered_{map,set} in files whose
 *                         output order matters (reports,
 *                         fingerprints, cache encodings, design
 *                         decisions)
 *   atomic-implicit-order atomic load/store/RMW without an explicit
 *                         memory_order argument (outside the
 *                         documented all-seq_cst chunk-deque zone)
 *   atomic-relaxed        memory_order_relaxed outside src/obs/ and
 *                         logging — relaxed is correct for stats,
 *                         suspicious for synchronization, so it
 *                         needs a per-site justification
 *   metric-name           QPAD_SPAN / obs::counter / obs::gauge /
 *                         obs::histogram names must be string
 *                         literals matching the `family.name`
 *                         grammar so metric exports stay
 *                         deterministic and greppable
 *   rawlog                raw stderr writes (std::cerr, fprintf /
 *                         fputs to stderr) outside the structured
 *                         log sink: diagnostics go through obs::log
 *                         so they stay leveled, request-tagged, and
 *                         QPAD_LOG-routable; the sink itself,
 *                         sanctioned stderr exporters, and abort
 *                         paths justify themselves inline
 *
 * Meta rules (always on, not suppressible):
 *
 *   suppression-justification  an allow() comment without a quoted
 *                              justification string
 *   suppression-unused         an allow() comment whose rule did not
 *                              fire on the covered lines (stale or
 *                              misplaced)
 *
 * Suppression syntax, same line or the line above the finding:
 *
 *     // qpad-lint: allow(atomic-relaxed) "stat counter, no ordering"
 */

#ifndef QPAD_LINT_RULES_HH
#define QPAD_LINT_RULES_HH

#include <string>
#include <string_view>
#include <vector>

#include "config.hh"
#include "lexer.hh"

namespace qlint
{

struct Finding
{
    std::string file; // repo-relative path
    int line = 0;
    std::string rule;
    std::string message;
    bool suppressed = false;
    std::string justification; // when suppressed
};

struct SuppressionRecord
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string justification;
};

struct FileReport
{
    std::vector<Finding> findings;
    std::vector<SuppressionRecord> suppressions;
};

/**
 * For each token, the name of the innermost *named function* whose
 * body contains it ("" at namespace/class scope). Lambdas and local
 * scopes inside a function keep the function's name; member
 * functions report the unqualified name; constructor member-init
 * lists (including brace-init members) are handled.
 */
std::vector<std::string>
enclosingFunctions(const std::vector<Token> &toks);

/** True iff `name` matches the `family.name` metric grammar. */
bool validMetricName(std::string_view name);

/** Run every configured rule over one file's contents. */
FileReport analyzeFile(const std::string &relpath,
                       std::string_view content, const Config &cfg);

/**
 * Render the --json document: {"findings": [...], "summary": {...}}.
 * Lives in the core library (not the driver) so tests can pin the
 * output shape.
 */
std::string renderJson(const std::vector<Finding> &findings,
                       std::size_t files,
                       std::size_t suppression_count);

} // namespace qlint

#endif // QPAD_LINT_RULES_HH

/**
 * @file
 * qpad-cache: offline inspection and maintenance of a persistent
 * cache directory (QPAD_CACHE_DIR).
 *
 *     qpad-cache stats <dir>     replay the log and print its census
 *     qpad-cache compact <dir>   rewrite the log to live records only
 *
 * Both commands take the same inter-process flock the workers use,
 * so they are safe to run against a directory a sweep farm is
 * actively writing to: `compact` is exactly the rewrite the store
 * performs online past its threshold (latest record per key, first-
 * appearance order, temp file + fsync + atomic rename), just forced
 * now — e.g. from cron between sweep batches, or before archiving a
 * cache directory.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/store.hh"

using namespace qpad;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s stats <cache-dir>\n"
                 "       %s compact <cache-dir>\n",
                 argv0, argv0);
    return 2;
}

/** Open the directory without auto-compaction (this tool only ever
 * mutates the log when explicitly asked to). */
cache::Store
openStore(const std::string &dir)
{
    cache::CacheOptions options;
    options.dir = dir;
    options.compact_factor = 0;
    return cache::Store(options);
}

int
runStats(const std::string &dir)
{
    const cache::Store store = openStore(dir);
    const cache::StoreStats s = store.stats();
    const std::string log_path =
        (std::filesystem::path(dir) / "qpad_cache.qpc").string();
    std::uintmax_t log_bytes = 0;
    std::error_code ec;
    log_bytes = std::filesystem::file_size(log_path, ec);
    if (ec)
        log_bytes = 0;

    std::printf("cache dir:        %s\n", dir.c_str());
    std::printf("log bytes:        %llu\n",
                (unsigned long long)log_bytes);
    std::printf("records replayed: %llu\n",
                (unsigned long long)s.disk_loaded);
    std::printf("records dropped:  %llu (torn/corrupt tail)\n",
                (unsigned long long)s.disk_dropped);
    std::printf("live entries:     %llu (%llu payload+overhead "
                "bytes)\n",
                (unsigned long long)s.entries,
                (unsigned long long)s.bytes);
    if (s.disk_loaded > s.entries)
        std::printf("superseded:       %llu records (compaction "
                    "would remove them)\n",
                    (unsigned long long)(s.disk_loaded - s.entries));
    if (s.persistence_lost != 0) {
        std::fprintf(stderr,
                     "error: could not open the log for writing "
                     "(see warnings above)\n");
        return 1;
    }
    return 0;
}

int
runCompact(const std::string &dir)
{
    cache::Store store = openStore(dir);
    const cache::StoreStats before = store.stats();
    if (before.persistence_lost != 0) {
        std::fprintf(stderr, "error: cannot open the log in '%s'\n",
                     dir.c_str());
        return 1;
    }
    if (!store.compactLog()) {
        std::fprintf(stderr, "error: compaction failed (the old log "
                             "is untouched)\n");
        return 1;
    }
    std::printf("compacted: %llu records -> %llu live\n",
                (unsigned long long)before.disk_loaded,
                (unsigned long long)before.entries);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3)
        return usage(argv[0]);
    const std::string command = argv[1];
    const std::string dir = argv[2];
    if (!std::filesystem::is_directory(dir)) {
        std::fprintf(stderr, "error: '%s' is not a directory\n",
                     dir.c_str());
        return 1;
    }
    if (command == "stats")
        return runStats(dir);
    if (command == "compact")
        return runCompact(dir);
    return usage(argv[0]);
}
